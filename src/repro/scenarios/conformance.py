"""Cross-backend conformance: do two backends agree on one scenario?

The simulation backend is deterministic down to the timestamp; the
asyncio backend runs over real sockets and its timings are wall-clock.
What *must* agree between them — and what CI asserts — are the
delivery/safety verdicts: which processes are correct, which delivered,
what they delivered, and whether the BRB predicates (totality,
agreement, validity) hold.  :class:`BackendVerdict` captures exactly
that timing-free projection of a
:class:`~repro.scenarios.engine.ScenarioResult`, and
:func:`run_conformance` runs one spec on several backends and compares.

Lossy and adaptive scenarios are compared differently.  Which messages a
lossy link loses — and therefore which processes deliver, and whether an
adaptive trigger fires at all — legitimately differs between a seeded
simulation and real sockets, so comparing delivery traces would fail for
reasons the paper's claims say nothing about.  What must *still* agree
is every safety outcome: no correct process delivered a forged message,
no two correct processes disagreed on a payload, no correct deliverer
got anything but what the source sent.  :class:`SafetyVerdict` is that
projection, and ``run_conformance``'s default ``mode="auto"`` selects it
exactly when the spec is lossy or adaptive.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.rco.causal import causal_order_holds
from repro.scenarios.engine import BroadcastOutcome, ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec

#: Verdict-comparison modes of :func:`run_conformance`.
CONFORMANCE_MODES = ("auto", "full", "safety")


@dataclass(frozen=True)
class BroadcastVerdict:
    """Timing-free delivery/safety projection of one broadcast outcome."""

    source: int
    bid: int
    #: Correct processes that delivered this broadcast, sorted.
    delivered_correct: Tuple[int, ...]
    #: (pid, payload_hex) for every correct process that delivered it.
    payloads: Tuple[Tuple[int, str], ...]
    all_correct_delivered: bool
    agreement_holds: bool
    validity_holds: bool


@dataclass(frozen=True)
class BackendVerdict:
    """Timing-free delivery/safety projection of one scenario result.

    The run-level fields describe the primary broadcast and the
    aggregated predicates (every broadcast must satisfy them);
    ``broadcasts`` carries one :class:`BroadcastVerdict` per workload
    broadcast, sorted by ``(source, bid)``, so multi-broadcast workloads
    are compared broadcast by broadcast.
    """

    correct_processes: Tuple[int, ...]
    crashed: Tuple[int, ...]
    byzantine: Tuple[Tuple[int, str], ...]
    #: Correct processes that delivered the primary broadcast, sorted.
    delivered_correct: Tuple[int, ...]
    #: (pid, payload_hex) for every correct process that delivered it.
    payloads: Tuple[Tuple[int, str], ...]
    all_correct_delivered: bool
    agreement_holds: bool
    validity_holds: bool
    #: Per-broadcast verdicts, sorted by (source, bid).
    broadcasts: Tuple[BroadcastVerdict, ...] = ()


def broadcast_verdict_of(
    outcome: BroadcastOutcome, correct: frozenset
) -> BroadcastVerdict:
    """Project one broadcast outcome onto its comparable verdict fields."""
    return BroadcastVerdict(
        source=outcome.source,
        bid=outcome.bid,
        delivered_correct=tuple(
            sorted(pid for pid in outcome.delivered_processes if pid in correct)
        ),
        payloads=tuple(
            sorted(
                (pid, payload)
                for _, pid, _, _, payload in outcome.delivery_trace
                if pid in correct
            )
        ),
        all_correct_delivered=outcome.all_correct_delivered,
        agreement_holds=outcome.agreement_holds,
        validity_holds=outcome.validity_holds,
    )


@dataclass(frozen=True)
class SafetyVerdict:
    """Loss-tolerant safety projection of one scenario result.

    Everything here must hold — and match across backends — *whatever*
    messages the lossy links lost and *whether or not* the adaptive
    triggers fired: the predicates quantify over the processes each run
    itself considers correct, and none of them depends on which subset
    of messages survived.  Deliberately absent: delivered sets, payload
    traces, totality, and the byzantine/crashed rosters (an adaptive
    conversion may fire on one backend and not the other).
    """

    agreement_holds: bool
    validity_holds: bool
    no_forged_deliveries: bool
    #: Per scheduled broadcast: (source, bid, agreement, validity).
    broadcast_safety: Tuple[Tuple[int, int, bool, bool], ...]
    #: Causal delivery order (RCO protocols; vacuously true otherwise).
    #: Loss-tolerant like the rest: the predicate only constrains
    #: processes that actually delivered the causally-later broadcast.
    causal_order_holds: bool = True


def no_forged_deliveries(result: ScenarioResult) -> bool:
    """No correct process delivered a broadcast its correct source never made.

    A *forged* delivery is one whose ``(source, bid)`` key is not in the
    scenario's schedule while ``source`` is a correct process — i.e. the
    adversary manufactured a broadcast and pinned it on an honest
    process, which the authenticated-channel / disjoint-path machinery
    must prevent.  Keys attributed to Byzantine processes are fine (a
    Byzantine source may broadcast anything), as are reliable-
    communication deliveries with no encoded originator (source ``-1``).
    """
    scheduled = {broadcast.key for broadcast in result.spec.broadcasts()}
    byzantine = {pid for pid, _ in result.byzantine}
    correct = set(result.correct_processes)
    for pid, key in result.metrics.delivery_times:
        if pid not in correct or key in scheduled:
            continue
        source = key[0]
        if source in byzantine or source == -1:
            continue
        return False
    return True


def safety_verdict_of(result: ScenarioResult) -> SafetyVerdict:
    """Project a result onto the loss-tolerant safety verdict fields."""
    return SafetyVerdict(
        agreement_holds=result.agreement_holds,
        validity_holds=result.validity_holds,
        no_forged_deliveries=no_forged_deliveries(result),
        broadcast_safety=tuple(
            (
                outcome.source,
                outcome.bid,
                outcome.agreement_holds,
                outcome.validity_holds,
            )
            for outcome in result.outcomes
        ),
        causal_order_holds=causal_order_holds(result),
    )


def verdict_of(result: ScenarioResult) -> BackendVerdict:
    """Project a result onto the backend-comparable verdict fields."""
    correct = frozenset(result.correct_processes)
    payloads = tuple(
        sorted(
            (pid, payload)
            for _, pid, _, _, payload in result.delivery_trace
            if pid in correct
        )
    )
    return BackendVerdict(
        correct_processes=tuple(sorted(result.correct_processes)),
        crashed=result.crashed,
        byzantine=result.byzantine,
        delivered_correct=tuple(
            sorted(pid for pid in result.delivered_processes if pid in correct)
        ),
        payloads=payloads,
        all_correct_delivered=result.all_correct_delivered,
        agreement_holds=result.agreement_holds,
        validity_holds=result.validity_holds,
        broadcasts=tuple(
            broadcast_verdict_of(outcome, correct) for outcome in result.outcomes
        ),
    )


@dataclass(frozen=True)
class ConformanceReport:
    """Verdicts of one spec across backends, plus the disagreement list."""

    spec_name: str
    scenario_hashes: Tuple[Tuple[str, str], ...]
    #: Per-backend verdicts: :class:`BackendVerdict` in full mode,
    #: :class:`SafetyVerdict` in safety mode (see ``mode``).
    verdicts: Tuple[Tuple[str, object], ...]
    #: Per-backend latency until all correct processes delivered (None if
    #: some did not).  Informational only — simulated vs wall-clock
    #: milliseconds — and deliberately not part of the agreement check.
    latencies_ms: Tuple[Tuple[str, object], ...] = ()
    #: The comparison that was applied: ``"full"`` or ``"safety"``.
    mode: str = "full"

    @property
    def agree(self) -> bool:
        """Whether every backend produced the same verdict."""
        return not self.mismatches()

    def mismatches(self) -> List[str]:
        """Human-readable field-level disagreements against the first backend."""
        if len(self.verdicts) < 2:
            return []
        reference_name, reference = self.verdicts[0]
        problems: List[str] = []
        for name, verdict in self.verdicts[1:]:
            for field_ in fields(type(reference)):
                expected = getattr(reference, field_.name)
                observed = getattr(verdict, field_.name)
                if expected != observed:
                    problems.append(
                        f"{field_.name}: {reference_name}={expected!r} "
                        f"vs {name}={observed!r}"
                    )
        return problems


def conformance_mode_for(spec: ScenarioSpec, mode: str = "auto") -> str:
    """Resolve the comparison mode for ``spec``.

    ``"auto"`` compares full delivery verdicts for reliable, statically
    faulted scenarios and falls back to safety-only verdicts for lossy,
    adaptive or churned ones, whose delivery sets legitimately differ
    between a seeded simulation and real sockets (under churn, which
    in-flight copies the graph edit catches is a timing property).
    """
    if mode not in CONFORMANCE_MODES:
        raise ConfigurationError(
            f"unknown conformance mode {mode!r}; expected one of {CONFORMANCE_MODES}"
        )
    if mode != "auto":
        return mode
    return (
        "safety"
        if (spec.is_lossy or spec.is_adaptive or spec.has_churn)
        else "full"
    )


def run_conformance(
    spec: ScenarioSpec,
    backends: Sequence[str] = ("simulation", "asyncio"),
    *,
    overrides: Dict[str, object] = None,
    mode: str = "auto",
) -> ConformanceReport:
    """Run one spec on every listed backend and compare the verdicts.

    ``overrides`` optionally maps a backend name to a configured
    :class:`~repro.scenarios.backends.ScenarioBackend` instance (e.g. an
    ``AsyncioBackend`` with a shorter delivery timeout for CI).
    ``mode`` selects the verdict projection compared across backends —
    ``"full"`` (delivery + safety), ``"safety"`` (loss-tolerant safety
    outcomes only) or ``"auto"`` (safety exactly when the spec is lossy
    or adaptive; see :func:`conformance_mode_for`).
    """
    overrides = overrides or {}
    resolved = conformance_mode_for(spec, mode)
    project = safety_verdict_of if resolved == "safety" else verdict_of
    results: List[Tuple[str, ScenarioResult]] = []
    for name in backends:
        result = run_scenario(spec.with_backend(name), backend=overrides.get(name))
        results.append((name, result))
    return ConformanceReport(
        spec_name=spec.name,
        scenario_hashes=tuple(
            (name, result.scenario_hash) for name, result in results
        ),
        verdicts=tuple((name, project(result)) for name, result in results),
        latencies_ms=tuple((name, result.latency_ms) for name, result in results),
        mode=resolved,
    )


__all__ = [
    "CONFORMANCE_MODES",
    "BroadcastVerdict",
    "BackendVerdict",
    "SafetyVerdict",
    "ConformanceReport",
    "broadcast_verdict_of",
    "verdict_of",
    "safety_verdict_of",
    "no_forged_deliveries",
    "conformance_mode_for",
    "run_conformance",
]
