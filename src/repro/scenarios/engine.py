"""Scenario engine: build and run one :class:`ScenarioSpec`.

:func:`run_scenario` is the single entry point the serial and parallel
sweep executors share.  It dispatches on ``spec.backend`` to a
:class:`~repro.scenarios.backends.ScenarioBackend`; the default
``"simulation"`` backend (:func:`simulate_scenario`, kept here) expands
the spec into a topology, a set of protocol instances (with Byzantine
behaviours placed by the spec's strategies) and a
:class:`SimulatedNetwork` with the spec's fault events armed, runs the
spec's broadcast workload (one broadcast by default, any
:class:`~repro.scenarios.spec.WorkloadSpec` schedule otherwise) and
freezes everything the evaluation needs into a :class:`ScenarioResult`
with one :class:`BroadcastOutcome` per broadcast.

Determinism contract (simulation backend): every random choice —
topology generation, link delays, adversary placement, randomized
behaviours — is derived from ``spec.seed``, so ``run_scenario(spec)``
returns an equal result whether it runs inline or in a worker process.
The asyncio backend shares the deterministic *expansion* (topology,
placement, protocol wiring) but its timings are wall-clock; only its
delivery/safety verdicts are comparable across runs (see
:mod:`repro.scenarios.conformance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.network.adversary import build_behaviour
from repro.network.simulation.network import SimulatedNetwork
from repro.runner.configs import protocol_factory, protocol_family
from repro.scenarios.faults import (
    AdaptiveController,
    ByzantineAction,
    CrashAction,
    CrashAt,
    CutLinkWhen,
    LeaveAt,
    LinkDownAction,
)
from repro.scenarios.placement import place_adversaries
from repro.scenarios.spec import BroadcastSpec, ScenarioSpec
from repro.topology.generators import Topology

#: Seed offset separating adaptive-conversion behaviour RNGs from the
#: statically placed ones (which use ``spec.seed + pid``).
_ADAPTIVE_SEED_OFFSET = 104_729

#: Trace entry: (delivery time ms, process, source, bid, payload hex).
TraceEntry = Tuple[float, int, int, int, str]


@dataclass(frozen=True)
class BroadcastOutcome:
    """Deterministic outcome of one broadcast of a workload.

    Latency and the delivery trace are relative to the scenario clock
    (``latency_ms`` is measured from the broadcast's ``start_time_ms``);
    the safety predicates are frozen at result time against the run's
    correct/Byzantine sets, so outcomes travel the wire and compare
    across backends without re-deriving context.
    """

    source: int
    bid: int
    start_time_ms: float
    payload_hex: str
    delivered_processes: Tuple[int, ...]
    latency_ms: Optional[float]
    delivery_trace: Tuple[TraceEntry, ...]
    all_correct_delivered: bool
    agreement_holds: bool
    validity_holds: bool

    @property
    def key(self) -> Tuple[int, int]:
        """The ``(source, bid)`` broadcast key."""
        return (self.source, self.bid)


@dataclass(frozen=True)
class ScenarioResult:
    """Deterministic outcome of one scenario run.

    Two runs of the same spec compare equal — the parallel executor's
    correctness tests rely on this.  The full :class:`RunMetrics` snapshot
    rides along for detailed analysis but is excluded from equality; the
    comparable fields are the deterministic summary.
    """

    spec: ScenarioSpec
    scenario_hash: str
    topology_name: str
    byzantine: Tuple[Tuple[int, str], ...]
    crashed: Tuple[int, ...]
    correct_processes: Tuple[int, ...]
    delivered_processes: Tuple[int, ...]
    latency_ms: Optional[float]
    total_bytes: int
    message_count: int
    dropped_messages: int
    payload_hex: str
    delivery_trace: Tuple[TraceEntry, ...]
    metrics: RunMetrics = field(compare=False, repr=False)
    #: One outcome per workload broadcast, sorted by ``(source, bid)``.
    #: Always non-empty: a legacy single-broadcast run has exactly one
    #: outcome and the top-level delivery fields mirror it.
    outcomes: Tuple[BroadcastOutcome, ...] = ()

    # ------------------------------------------------------------------
    # Correctness predicates (aggregated over every broadcast)
    # ------------------------------------------------------------------
    @property
    def all_correct_delivered(self) -> bool:
        """BRB-Totality over the correct processes, for every broadcast."""
        if not self.outcomes:
            return set(self.correct_processes) <= set(self.delivered_processes)
        return all(outcome.all_correct_delivered for outcome in self.outcomes)

    @property
    def agreement_holds(self) -> bool:
        """No two correct processes delivered different payloads for a key."""
        if not self.outcomes:
            payloads = {
                payload
                for _, pid, _, _, payload in self.delivery_trace
                if pid in self.correct_processes
            }
            return len(payloads) <= 1
        return all(outcome.agreement_holds for outcome in self.outcomes)

    @property
    def validity_holds(self) -> bool:
        """Correct processes only delivered what each source sent.

        Vacuously true for broadcasts whose source is Byzantine
        (BRB-Validity only constrains broadcasts by correct sources).
        """
        if not self.outcomes:
            if any(pid == self.spec.source for pid, _ in self.byzantine):
                return True
            return all(
                payload == self.payload_hex
                for _, pid, _, _, payload in self.delivery_trace
                if pid in self.correct_processes
            )
        return all(outcome.validity_holds for outcome in self.outcomes)

    # ------------------------------------------------------------------
    # Workload aggregates
    # ------------------------------------------------------------------
    @property
    def broadcast_count(self) -> int:
        """Number of broadcasts the workload initiated."""
        return len(self.outcomes)

    @property
    def delivered_broadcast_count(self) -> int:
        """Broadcasts every correct process delivered (totality per key)."""
        return sum(1 for outcome in self.outcomes if outcome.all_correct_delivered)

    @property
    def throughput_dps(self) -> Optional[float]:
        """Fully delivered broadcasts per second of run time.

        Simulated seconds on the simulation backend, wall-clock seconds
        on the asyncio backend; ``None`` when the run recorded no time.
        """
        if self.metrics.end_time <= 0:
            return None
        return self.delivered_broadcast_count / (self.metrics.end_time / 1000.0)

    @property
    def broadcast_latencies(self) -> Tuple[Optional[float], ...]:
        """Per-broadcast latency, in outcome order (``None`` = undelivered)."""
        return tuple(outcome.latency_ms for outcome in self.outcomes)

    def latency_distribution(self) -> Dict[str, Optional[float]]:
        """Min/mean/max over the delivered broadcasts' latencies."""
        observed = [latency for latency in self.broadcast_latencies if latency is not None]
        if not observed:
            return {"count": 0, "min_ms": None, "mean_ms": None, "max_ms": None}
        return {
            "count": len(observed),
            "min_ms": min(observed),
            "mean_ms": sum(observed) / len(observed),
            "max_ms": max(observed),
        }

    def summary(self) -> Dict[str, object]:
        """JSON-serializable deterministic summary (golden-file format).

        The layout of a single-broadcast run is pinned byte-for-byte by
        the golden files; workload runs add one extra ``"workload"``
        section without touching the legacy keys.
        """
        summary: Dict[str, object] = {
            "scenario": self.spec.name,
            "hash": self.scenario_hash,
            "topology": self.topology_name,
            "byzantine": [list(item) for item in self.byzantine],
            "crashed": list(self.crashed),
            "correct": list(self.correct_processes),
            "delivered": list(self.delivered_processes),
            "latency_ms": self.latency_ms,
            "total_bytes": self.total_bytes,
            "message_count": self.message_count,
            "dropped_messages": self.dropped_messages,
            "messages_by_type": dict(sorted(self.metrics.messages_by_type.items())),
            "bytes_by_type": dict(sorted(self.metrics.bytes_by_type.items())),
            "trace": [list(entry) for entry in self.delivery_trace],
        }
        if self.spec.workload is not None:
            summary["workload"] = {
                "broadcasts": [
                    {
                        "source": outcome.source,
                        "bid": outcome.bid,
                        "start_time_ms": outcome.start_time_ms,
                        "delivered": list(outcome.delivered_processes),
                        "latency_ms": outcome.latency_ms,
                        "all_correct_delivered": outcome.all_correct_delivered,
                        "agreement_holds": outcome.agreement_holds,
                        "validity_holds": outcome.validity_holds,
                    }
                    for outcome in self.outcomes
                ],
                "delivered_broadcasts": self.delivered_broadcast_count,
                "throughput_dps": self.throughput_dps,
                "latency_distribution": self.latency_distribution(),
            }
        return summary


def place_byzantine(spec: ScenarioSpec, topology: Topology) -> Dict[int, object]:
    """Assign processes to the spec's adversary slots.

    Returns pid → :class:`AdversarySpec`.  Placement is deterministic: the
    strategies are seeded from ``spec.seed`` plus the adversary-spec
    index, the source is only eligible for the ``"equivocate"`` behaviour,
    and earlier specs claim processes before later ones.
    """
    assignments: Dict[int, object] = {}
    for index, adversary in enumerate(spec.adversaries):
        count = adversary.count
        if adversary.behaviour == "equivocate" and count > 0:
            if count > 1:
                # Equivocation only acts at the broadcasting process; a
                # non-source EquivocatingSource would silently behave as
                # mute and misreport what was measured.
                raise ConfigurationError(
                    "the 'equivocate' behaviour only applies to the source "
                    f"(count=1); got count={count}"
                )
            if spec.source in assignments:
                raise ConfigurationError(
                    "the source is already assigned another behaviour"
                )
            assignments[spec.source] = adversary
            count -= 1
        if count <= 0:
            continue
        placed = place_adversaries(
            topology,
            count,
            adversary.placement,
            seed=spec.seed + 7919 * (index + 1),
            exclude=set(assignments) | {spec.source},
        )
        for pid in placed:
            assignments[pid] = adversary
    return assignments


def build_protocols(
    spec: ScenarioSpec, topology: Topology, byzantine: Dict[int, object]
) -> Dict[int, object]:
    """One protocol or behaviour instance per process of the topology."""
    system = spec.system()
    builder = protocol_factory(spec.protocol, spec.modifications)
    family = protocol_family(spec.protocol)
    protocols: Dict[int, object] = {}
    for pid in topology.nodes:
        neighbors = sorted(topology.neighbors(pid))
        adversary = byzantine.get(pid)
        if adversary is None:
            protocols[pid] = builder(pid, system, neighbors)
        else:
            protocols[pid] = build_behaviour(
                adversary.behaviour,
                pid,
                neighbors,
                system=system,
                inner_factory=lambda pid=pid, neighbors=neighbors: builder(
                    pid, system, neighbors
                ),
                family=family,
                seed=spec.seed + pid,
                drop_probability=adversary.drop_probability,
                conflicting_payload=adversary.conflicting_payload,
            )
    return protocols


def validate_topology(spec: ScenarioSpec, topology: Topology) -> None:
    """Checks every backend applies to the expanded topology."""
    for broadcast in spec.broadcasts():
        if broadcast.source not in topology.adjacency:
            raise ConfigurationError(
                f"source {broadcast.source} is not a process of the topology"
            )
    for fault in spec.adaptive:
        # Validated before the run starts so both backends reject an
        # invalid target identically — a trigger firing mid-run must
        # never be the first place a bad pid or missing link surfaces.
        pid = getattr(fault, "pid", None)
        if pid is not None and pid not in topology.adjacency:
            raise ConfigurationError(
                f"adaptive fault {type(fault).__name__} targets unknown "
                f"process {pid}"
            )
        if isinstance(fault, CutLinkWhen) and not topology.has_edge(fault.u, fault.v):
            raise ConfigurationError(
                f"adaptive fault CutLinkWhen targets missing link "
                f"({fault.u}, {fault.v})"
            )
    if spec.protocol in ("bracha", "rco_bracha") and not topology.is_fully_connected():
        # Bracha's protocol assumes every pair of processes shares a
        # channel; on a partial graph it silently never delivers.  The
        # RCO wrapper inherits the inner protocol's assumption.
        raise ConfigurationError(
            f"the {spec.protocol!r} protocol requires a complete topology; "
            f"got {topology.name}"
        )


def build_network(spec: ScenarioSpec) -> Tuple[SimulatedNetwork, Dict[int, str]]:
    """Expand a spec into a ready-to-run network.

    Returns the network (faults armed, broadcast not yet initiated) and
    the pid → behaviour-name map of the placed adversaries.
    """
    topology = spec.topology.build(spec.seed)
    validate_topology(spec, topology)
    byzantine = place_byzantine(spec, topology)
    protocols = build_protocols(spec, topology, byzantine)
    network = SimulatedNetwork(
        topology,
        protocols,
        delay_model=spec.delay.build(),
        seed=spec.seed,
        collector=MetricsCollector(),
        shared_bandwidth_bps=spec.shared_bandwidth_bps,
    )
    for fault in spec.faults:
        fault.apply(network)
    return network, {pid: adv.behaviour for pid, adv in byzantine.items()}


def freeze_broadcast_outcome(
    broadcast: BroadcastSpec,
    *,
    payload: bytes,
    metrics: RunMetrics,
    byzantine: Dict[int, str],
    correct: Tuple[int, ...],
    trace: Optional[Tuple[TraceEntry, ...]] = None,
    start_time_factor: float = 1.0,
) -> BroadcastOutcome:
    """Freeze one broadcast's observations into a :class:`BroadcastOutcome`.

    ``trace`` optionally carries the broadcast's delivery trace when the
    caller already grouped the run's deliveries by key (the engine does,
    to avoid rescanning the full delivery map per broadcast); omitted,
    it is filtered from ``metrics`` here.  ``start_time_factor`` maps
    the broadcast's nominal ``start_time_ms`` into the domain of the
    recorded delivery timestamps before latency is measured — 1.0 for
    the simulation (both are simulated ms), ``time_scale * 1000`` for
    the asyncio backend (timestamps are wall-clock ms).
    """
    key = broadcast.key
    if trace is None:
        trace = tuple(
            (time, pid, bkey[0], bkey[1], metrics.delivered_payloads[(pid, bkey)].hex())
            for (pid, bkey), time in metrics.delivery_times.items()
            if bkey == key
        )
    delivered = tuple(sorted(entry[1] for entry in trace))
    payload_hex = payload.hex()
    correct_set = set(correct)
    correct_payloads = {
        entry[4] for entry in trace if entry[1] in correct_set
    }
    source_is_byzantine = broadcast.source in byzantine
    return BroadcastOutcome(
        source=broadcast.source,
        bid=broadcast.bid,
        start_time_ms=broadcast.start_time_ms,
        payload_hex=payload_hex,
        delivered_processes=delivered,
        latency_ms=metrics.delivery_latency(
            key, correct, start_time=broadcast.start_time_ms * start_time_factor
        ),
        delivery_trace=trace,
        all_correct_delivered=correct_set <= set(delivered),
        agreement_holds=len(correct_payloads) <= 1,
        validity_holds=source_is_byzantine
        or all(delivered_hex == payload_hex for delivered_hex in correct_payloads),
    )


def freeze_result(
    spec: ScenarioSpec,
    *,
    topology: Topology,
    byzantine: Dict[int, str],
    metrics: RunMetrics,
    dropped_messages: int,
    start_time_factor: float = 1.0,
    extra_crashed: Tuple[int, ...] = (),
) -> ScenarioResult:
    """Freeze one run's observations into a :class:`ScenarioResult`.

    Shared by every execution backend: the simulation passes simulated
    timestamps, the asyncio backend wall-clock milliseconds relative to
    the broadcast epoch — the delivery/safety predicates read the same
    either way.  ``byzantine`` already includes any adaptive mid-run
    conversions (the caller merges them); ``extra_crashed`` carries the
    pids adaptive triggers crashed, on top of the spec's static
    :class:`CrashAt` events and the departed pids of :class:`LeaveAt`
    churn (a process that left the run is non-correct for safety
    accounting, exactly like a crashed one).

    Fault precedence: a process that is both Byzantine and targeted by a
    :class:`CrashAt` fault (or an adaptive crash) is reported as
    Byzantine only — the Byzantine behaviour subsumes fail-silence, and
    one process must never appear in both the ``byzantine`` and
    ``crashed`` sets.
    """
    crashed = tuple(
        sorted(
            (
                {
                    fault.pid
                    for fault in spec.faults
                    if isinstance(fault, (CrashAt, LeaveAt))
                }
                | set(extra_crashed)
            )
            - set(byzantine)
        )
    )
    correct = tuple(
        pid
        for pid in topology.nodes
        if pid not in byzantine and pid not in crashed
    )
    # Group the run's deliveries by broadcast key in one pass (insertion
    # order — delivery order — is preserved per key), so freezing stays
    # linear in the number of deliveries however many broadcasts the
    # workload holds.
    traces_by_key: Dict[Tuple[int, int], List[TraceEntry]] = {}
    for (pid, bkey), time in metrics.delivery_times.items():
        traces_by_key.setdefault(bkey, []).append(
            (time, pid, bkey[0], bkey[1], metrics.delivered_payloads[(pid, bkey)].hex())
        )
    outcomes = tuple(
        freeze_broadcast_outcome(
            broadcast,
            payload=spec.payload_for(broadcast),
            metrics=metrics,
            byzantine=byzantine,
            correct=correct,
            trace=tuple(traces_by_key.get(broadcast.key, ())),
            start_time_factor=start_time_factor,
        )
        for broadcast in sorted(spec.broadcasts(), key=lambda b: b.key)
    )
    # The top-level delivery fields mirror the primary broadcast — the
    # spec's (source, bid) when the workload contains it, otherwise the
    # first outcome — which for a legacy single-broadcast spec is
    # exactly the pre-workload layout.
    primary = next(
        (o for o in outcomes if o.key == (spec.source, spec.bid)), outcomes[0]
    )
    return ScenarioResult(
        spec=spec,
        scenario_hash=spec.scenario_hash(),
        topology_name=topology.name,
        byzantine=tuple(sorted(byzantine.items())),
        crashed=crashed,
        correct_processes=correct,
        delivered_processes=primary.delivered_processes,
        latency_ms=primary.latency_ms,
        total_bytes=metrics.total_bytes,
        message_count=metrics.message_count,
        dropped_messages=dropped_messages,
        payload_hex=primary.payload_hex,
        delivery_trace=primary.delivery_trace,
        metrics=metrics,
        outcomes=outcomes,
    )


@dataclass
class AdaptiveRunState:
    """What a run's adaptive triggers actually did (mutable, per run).

    ``converted`` maps pid → behaviour name for every process an adaptive
    trigger turned Byzantine; ``crashed`` holds the pids adaptive
    triggers crashed.  Both feed result accounting: converted processes
    join the ``byzantine`` set, adaptively crashed ones the ``crashed``
    set.
    """

    converted: Dict[int, str] = field(default_factory=dict)
    crashed: set = field(default_factory=set)


def make_adaptive_observer(
    spec: ScenarioSpec,
    state: AdaptiveRunState,
    *,
    topology: Topology,
    byzantine: Dict[int, str],
    crash,
    cut_link,
    live_protocol,
    install_protocol,
):
    """The shared observer applying adaptive actions on either backend.

    Backends differ only in their primitives — ``crash(pid)``,
    ``cut_link(u, v, duration_ms)``, ``live_protocol(pid)`` and
    ``install_protocol(pid, behaviour)`` — while the trigger bookkeeping,
    the first-behaviour-wins guard, the behaviour construction (wrapping
    the *live* instance so ``"drop"``/``"forge"`` conversions keep their
    accumulated state) and the seed derivation live here, once.  Targets
    are validated up front by :func:`validate_topology`.  Returns
    ``None`` when the spec carries no adaptive faults.
    """
    if not spec.adaptive:
        return None
    controller = AdaptiveController(spec.adaptive)
    system = spec.system()
    family = protocol_family(spec.protocol)

    def apply(action) -> None:
        if isinstance(action, CrashAction):
            crash(action.pid)
            state.crashed.add(action.pid)
        elif isinstance(action, LinkDownAction):
            cut_link(action.u, action.v, action.duration_ms)
        elif isinstance(action, ByzantineAction):
            pid = action.pid
            if pid in byzantine or pid in state.converted:
                return  # already Byzantine: the first behaviour wins
            inner = live_protocol(pid)
            behaviour = build_behaviour(
                action.behaviour,
                pid,
                sorted(topology.neighbors(pid)),
                system=system,
                inner_factory=lambda inner=inner: inner,
                family=family,
                seed=spec.seed + _ADAPTIVE_SEED_OFFSET + pid,
                drop_probability=action.drop_probability,
            )
            install_protocol(pid, behaviour)
            state.converted[pid] = action.behaviour

    def observe(observation) -> None:
        for action in controller.observe(observation):
            apply(action)

    return observe


def arm_adaptive(
    network: SimulatedNetwork, spec: ScenarioSpec, byzantine: Dict[int, str]
) -> AdaptiveRunState:
    """Install the spec's adaptive faults on a simulated network.

    Feeds every network observation through an
    :class:`~repro.scenarios.faults.AdaptiveController` and applies the
    emitted actions in place: crashes call
    :meth:`SimulatedNetwork.crash`, link cuts open a drop window at the
    current time, Byzantine conversions swap the live protocol instance
    via :meth:`SimulatedNetwork.replace_protocol`.  Returns the mutable
    state the caller folds into result accounting.
    """
    state = AdaptiveRunState()

    def cut_link(u: int, v: int, duration_ms) -> None:
        now = network.now
        end = None if duration_ms is None else now + duration_ms
        network.add_link_drop_window(u, v, now, end)

    observer = make_adaptive_observer(
        spec,
        state,
        topology=network.topology,
        byzantine=byzantine,
        crash=network.crash,
        cut_link=cut_link,
        live_protocol=lambda pid: network.protocols[pid],
        install_protocol=network.replace_protocol,
    )
    if observer is not None:
        network.observer = observer
    return state


def simulate_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario on the discrete-event simulator and freeze it.

    Workload broadcasts are initiated in canonical schedule order via
    :meth:`SimulatedNetwork.broadcast_at`: time-0 broadcasts fire before
    the event loop starts (the legacy single-broadcast path,
    byte-identical to the pre-workload engine), later ones are scheduled
    at their ``start_time_ms``.  Adaptive faults observe the run and may
    crash processes, cut links or convert processes to Byzantine
    behaviours mid-run; what they did is folded into the result's
    ``byzantine``/``crashed`` accounting.
    """
    network, byzantine = build_network(spec)
    adaptive = arm_adaptive(network, spec, byzantine)
    for broadcast in spec.broadcasts():
        network.broadcast_at(
            broadcast.source,
            spec.payload_for(broadcast),
            broadcast.bid,
            broadcast.start_time_ms,
        )
    metrics = network.run(max_events=spec.max_events)
    return freeze_result(
        spec,
        topology=network.topology,
        byzantine={**byzantine, **adaptive.converted},
        metrics=metrics,
        dropped_messages=network.dropped_messages,
        extra_crashed=tuple(sorted(adaptive.crashed)),
    )


def run_scenario(spec: ScenarioSpec, backend=None) -> ScenarioResult:
    """Run one scenario end to end on its declared execution backend.

    ``backend`` optionally overrides the dispatch with a configured
    :class:`~repro.scenarios.backends.ScenarioBackend` instance (e.g. an
    :class:`~repro.scenarios.backends.AsyncioBackend` with a custom
    delivery timeout).
    """
    if backend is None:
        if spec.backend == "simulation":
            return simulate_scenario(spec)
        # Imported lazily: backends depends on this module.
        from repro.scenarios.backends import get_backend

        backend = get_backend(spec.backend)
    return backend.run(spec)


__all__ = [
    "BroadcastOutcome",
    "ScenarioResult",
    "TraceEntry",
    "AdaptiveRunState",
    "place_byzantine",
    "build_protocols",
    "build_network",
    "validate_topology",
    "make_adaptive_observer",
    "arm_adaptive",
    "freeze_broadcast_outcome",
    "freeze_result",
    "simulate_scenario",
    "run_scenario",
]
