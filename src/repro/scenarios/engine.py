"""Scenario engine: build and run one :class:`ScenarioSpec`.

:func:`run_scenario` is the single entry point the serial and parallel
sweep executors share.  It dispatches on ``spec.backend`` to a
:class:`~repro.scenarios.backends.ScenarioBackend`; the default
``"simulation"`` backend (:func:`simulate_scenario`, kept here) expands
the spec into a topology, a set of protocol instances (with Byzantine
behaviours placed by the spec's strategies) and a
:class:`SimulatedNetwork` with the spec's fault events armed, runs one
broadcast and freezes everything the evaluation needs into a
:class:`ScenarioResult`.

Determinism contract (simulation backend): every random choice —
topology generation, link delays, adversary placement, randomized
behaviours — is derived from ``spec.seed``, so ``run_scenario(spec)``
returns an equal result whether it runs inline or in a worker process.
The asyncio backend shares the deterministic *expansion* (topology,
placement, protocol wiring) but its timings are wall-clock; only its
delivery/safety verdicts are comparable across runs (see
:mod:`repro.scenarios.conformance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.network.adversary import build_behaviour
from repro.network.simulation.network import SimulatedNetwork
from repro.runner.configs import protocol_factory, protocol_family
from repro.scenarios.faults import CrashAt
from repro.scenarios.placement import place_adversaries
from repro.scenarios.spec import ScenarioSpec
from repro.topology.generators import Topology

#: Trace entry: (delivery time ms, process, source, bid, payload hex).
TraceEntry = Tuple[float, int, int, int, str]


@dataclass(frozen=True)
class ScenarioResult:
    """Deterministic outcome of one scenario run.

    Two runs of the same spec compare equal — the parallel executor's
    correctness tests rely on this.  The full :class:`RunMetrics` snapshot
    rides along for detailed analysis but is excluded from equality; the
    comparable fields are the deterministic summary.
    """

    spec: ScenarioSpec
    scenario_hash: str
    topology_name: str
    byzantine: Tuple[Tuple[int, str], ...]
    crashed: Tuple[int, ...]
    correct_processes: Tuple[int, ...]
    delivered_processes: Tuple[int, ...]
    latency_ms: Optional[float]
    total_bytes: int
    message_count: int
    dropped_messages: int
    payload_hex: str
    delivery_trace: Tuple[TraceEntry, ...]
    metrics: RunMetrics = field(compare=False, repr=False)

    # ------------------------------------------------------------------
    # Correctness predicates
    # ------------------------------------------------------------------
    @property
    def all_correct_delivered(self) -> bool:
        """BRB-Totality over the correct, non-crashed processes."""
        return set(self.correct_processes) <= set(self.delivered_processes)

    @property
    def agreement_holds(self) -> bool:
        """No two correct processes delivered different payloads."""
        payloads = {
            payload
            for _, pid, _, _, payload in self.delivery_trace
            if pid in self.correct_processes
        }
        return len(payloads) <= 1

    @property
    def validity_holds(self) -> bool:
        """Correct processes only delivered the payload the source sent.

        Vacuously true when the source is Byzantine (BRB-Validity only
        constrains broadcasts by correct sources).
        """
        if any(pid == self.spec.source for pid, _ in self.byzantine):
            return True
        return all(
            payload == self.payload_hex
            for _, pid, _, _, payload in self.delivery_trace
            if pid in self.correct_processes
        )

    def summary(self) -> Dict[str, object]:
        """JSON-serializable deterministic summary (golden-file format)."""
        return {
            "scenario": self.spec.name,
            "hash": self.scenario_hash,
            "topology": self.topology_name,
            "byzantine": [list(item) for item in self.byzantine],
            "crashed": list(self.crashed),
            "correct": list(self.correct_processes),
            "delivered": list(self.delivered_processes),
            "latency_ms": self.latency_ms,
            "total_bytes": self.total_bytes,
            "message_count": self.message_count,
            "dropped_messages": self.dropped_messages,
            "messages_by_type": dict(sorted(self.metrics.messages_by_type.items())),
            "bytes_by_type": dict(sorted(self.metrics.bytes_by_type.items())),
            "trace": [list(entry) for entry in self.delivery_trace],
        }


def place_byzantine(spec: ScenarioSpec, topology: Topology) -> Dict[int, object]:
    """Assign processes to the spec's adversary slots.

    Returns pid → :class:`AdversarySpec`.  Placement is deterministic: the
    strategies are seeded from ``spec.seed`` plus the adversary-spec
    index, the source is only eligible for the ``"equivocate"`` behaviour,
    and earlier specs claim processes before later ones.
    """
    assignments: Dict[int, object] = {}
    for index, adversary in enumerate(spec.adversaries):
        count = adversary.count
        if adversary.behaviour == "equivocate" and count > 0:
            if count > 1:
                # Equivocation only acts at the broadcasting process; a
                # non-source EquivocatingSource would silently behave as
                # mute and misreport what was measured.
                raise ConfigurationError(
                    "the 'equivocate' behaviour only applies to the source "
                    f"(count=1); got count={count}"
                )
            if spec.source in assignments:
                raise ConfigurationError(
                    "the source is already assigned another behaviour"
                )
            assignments[spec.source] = adversary
            count -= 1
        if count <= 0:
            continue
        placed = place_adversaries(
            topology,
            count,
            adversary.placement,
            seed=spec.seed + 7919 * (index + 1),
            exclude=set(assignments) | {spec.source},
        )
        for pid in placed:
            assignments[pid] = adversary
    return assignments


def build_protocols(
    spec: ScenarioSpec, topology: Topology, byzantine: Dict[int, object]
) -> Dict[int, object]:
    """One protocol or behaviour instance per process of the topology."""
    system = spec.system()
    builder = protocol_factory(spec.protocol, spec.modifications)
    family = protocol_family(spec.protocol)
    protocols: Dict[int, object] = {}
    for pid in topology.nodes:
        neighbors = sorted(topology.neighbors(pid))
        adversary = byzantine.get(pid)
        if adversary is None:
            protocols[pid] = builder(pid, system, neighbors)
        else:
            protocols[pid] = build_behaviour(
                adversary.behaviour,
                pid,
                neighbors,
                system=system,
                inner_factory=lambda pid=pid, neighbors=neighbors: builder(
                    pid, system, neighbors
                ),
                family=family,
                seed=spec.seed + pid,
                drop_probability=adversary.drop_probability,
            )
    return protocols


def validate_topology(spec: ScenarioSpec, topology: Topology) -> None:
    """Checks every backend applies to the expanded topology."""
    if spec.source not in topology.adjacency:
        raise ConfigurationError(
            f"source {spec.source} is not a process of the topology"
        )
    if spec.protocol == "bracha" and not topology.is_fully_connected():
        # Bracha's protocol assumes every pair of processes shares a
        # channel; on a partial graph it silently never delivers.
        raise ConfigurationError(
            "the 'bracha' protocol requires a complete topology; "
            f"got {topology.name}"
        )


def build_network(spec: ScenarioSpec) -> Tuple[SimulatedNetwork, Dict[int, str]]:
    """Expand a spec into a ready-to-run network.

    Returns the network (faults armed, broadcast not yet initiated) and
    the pid → behaviour-name map of the placed adversaries.
    """
    topology = spec.topology.build(spec.seed)
    validate_topology(spec, topology)
    byzantine = place_byzantine(spec, topology)
    protocols = build_protocols(spec, topology, byzantine)
    network = SimulatedNetwork(
        topology,
        protocols,
        delay_model=spec.delay.build(),
        seed=spec.seed,
        collector=MetricsCollector(),
        shared_bandwidth_bps=spec.shared_bandwidth_bps,
    )
    for fault in spec.faults:
        fault.apply(network)
    return network, {pid: adv.behaviour for pid, adv in byzantine.items()}


def freeze_result(
    spec: ScenarioSpec,
    *,
    topology: Topology,
    byzantine: Dict[int, str],
    metrics: RunMetrics,
    dropped_messages: int,
    payload: bytes,
) -> ScenarioResult:
    """Freeze one run's observations into a :class:`ScenarioResult`.

    Shared by every execution backend: the simulation passes simulated
    timestamps, the asyncio backend wall-clock milliseconds relative to
    the broadcast epoch — the delivery/safety predicates read the same
    either way.
    """
    crashed = tuple(
        sorted({fault.pid for fault in spec.faults if isinstance(fault, CrashAt)})
    )
    correct = tuple(
        pid
        for pid in topology.nodes
        if pid not in byzantine and pid not in crashed
    )
    key = (spec.source, spec.bid)
    trace = tuple(
        (time, pid, bkey[0], bkey[1], metrics.delivered_payloads[(pid, bkey)].hex())
        for (pid, bkey), time in metrics.delivery_times.items()
        if bkey == key
    )
    return ScenarioResult(
        spec=spec,
        scenario_hash=spec.scenario_hash(),
        topology_name=topology.name,
        byzantine=tuple(sorted(byzantine.items())),
        crashed=crashed,
        correct_processes=correct,
        delivered_processes=metrics.delivering_processes(key),
        latency_ms=metrics.delivery_latency(key, correct),
        total_bytes=metrics.total_bytes,
        message_count=metrics.message_count,
        dropped_messages=dropped_messages,
        payload_hex=payload.hex(),
        delivery_trace=trace,
        metrics=metrics,
    )


def simulate_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario on the discrete-event simulator and freeze it."""
    network, byzantine = build_network(spec)
    payload = spec.payload()
    network.broadcast(spec.source, payload, spec.bid)
    metrics = network.run(max_events=spec.max_events)
    return freeze_result(
        spec,
        topology=network.topology,
        byzantine=byzantine,
        metrics=metrics,
        dropped_messages=network.dropped_messages,
        payload=payload,
    )


def run_scenario(spec: ScenarioSpec, backend=None) -> ScenarioResult:
    """Run one scenario end to end on its declared execution backend.

    ``backend`` optionally overrides the dispatch with a configured
    :class:`~repro.scenarios.backends.ScenarioBackend` instance (e.g. an
    :class:`~repro.scenarios.backends.AsyncioBackend` with a custom
    delivery timeout).
    """
    if backend is None:
        if spec.backend == "simulation":
            return simulate_scenario(spec)
        # Imported lazily: backends depends on this module.
        from repro.scenarios.backends import get_backend

        backend = get_backend(spec.backend)
    return backend.run(spec)


__all__ = [
    "ScenarioResult",
    "TraceEntry",
    "place_byzantine",
    "build_protocols",
    "build_network",
    "validate_topology",
    "freeze_result",
    "simulate_scenario",
    "run_scenario",
]
