"""Scenario grids: expand a base spec over axes of varying parameters.

A grid cell is one fully resolved :class:`ScenarioSpec`.  Axes address
spec fields either directly (``"seed"``, ``"payload_size"``) or through a
dotted path into the nested specs (``"topology.n"``, ``"delay.kind"``),
and cells are produced in deterministic row-major order — the order the
sweep executors preserve in their results.

Workloads are an axis like any other: ``expand_grid(base, {"workload":
[None, WorkloadSpec.repeated(0, 5, 40.0)]})`` sweeps the same scenario
over the single-broadcast form and a sensor-style repeated workload, and
the scenario hash keeps their cache slots apart (a trivial workload
normalizes to ``None`` and shares the legacy slot by design).

So are message loss and adaptive adversaries: ``expand_grid(base,
{"delay.loss": [0.0, 0.05, 0.2]})`` sweeps the same scenario over
increasingly lossy links, and ``{"adaptive": [(), (CrashWhen(pid=0,
after=ObservationFilter(kind="send"), count=3),)]}`` compares the
fault-free run against a trigger-driven source crash.  Cells whose new
fields sit at their defaults keep their pre-loss hashes and cache slots.
"""

from __future__ import annotations

import itertools
from dataclasses import fields, is_dataclass, replace
from typing import Any, Mapping, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec


def _replace_path(spec: Any, path: str, value: Any) -> Any:
    """Functional update of a (possibly dotted) field path on nested specs."""
    head, _, rest = path.partition(".")
    if not is_dataclass(spec) or head not in {f.name for f in fields(spec)}:
        raise ConfigurationError(
            f"unknown scenario grid axis {path!r} on {type(spec).__name__}"
        )
    if rest:
        value = _replace_path(getattr(spec, head), rest, value)
    return replace(spec, **{head: value})


def expand_grid(
    base: ScenarioSpec, axes: Mapping[str, Sequence[Any]]
) -> Tuple[ScenarioSpec, ...]:
    """Cartesian product of ``axes`` applied to ``base``, row-major.

    >>> cells = expand_grid(base, {"topology.n": [10, 16], "seed": range(3)})
    >>> len(cells)
    6
    """
    names = list(axes)
    value_lists = [list(axes[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise ConfigurationError(f"scenario grid axis {name!r} has no values")
    combos = itertools.product(*value_lists)
    cells = []
    for combo in combos:
        spec = base
        for name, value in zip(names, combo):
            spec = _replace_path(spec, name, value)
        cells.append(spec)
    return tuple(cells)


def seed_cells(base: ScenarioSpec, runs: int, *, base_seed: int = None) -> Tuple[ScenarioSpec, ...]:
    """``runs`` copies of ``base`` with consecutive seeds (one cell per run)."""
    start = base.seed if base_seed is None else base_seed
    return tuple(base.with_seed(start + index) for index in range(runs))


__all__ = ["expand_grid", "seed_cells"]
