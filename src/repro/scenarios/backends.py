"""Pluggable execution backends for the scenario engine.

A :class:`ScenarioBackend` turns one declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into a
:class:`~repro.scenarios.engine.ScenarioResult`.  Two implementations
ship:

* :class:`SimulationBackend` — the discrete-event simulator, fully
  deterministic (bit-identical results per seed);
* :class:`AsyncioBackend` — the same protocol objects over real TCP
  sockets on localhost (:mod:`repro.network.asyncio_runtime`).  The
  deterministic parts of the expansion — topology generation, adversary
  placement, protocol wiring — are byte-for-byte the ones the simulator
  uses; the spec's fault events are re-expressed as runtime actions:

  ========================  =====================================
  fault event               runtime action
  ========================  =====================================
  ``CrashAt(pid, t)``       node goes fail-silent at wall-clock
                            ``t`` (``t<=0``: before the workload)
  ``LinkDropWindow(u,v,…)`` connection-level drop filters on both
                            endpoints of the link
  ``DelayedStart(pid, t)``  node buffers inbound traffic and joins
                            at wall-clock ``t``
  ``JoinAt(pid, t)``        node is drop-dormant (inbound traffic is
                            lost) until it joins at wall-clock ``t``
  ``LeaveAt(pid, t)``       node goes fail-silent and every channel
                            to it is torn down at wall-clock ``t``
  ``RewireLinkAt(...)``     old channel severed on both endpoints,
                            new link accepted and dialed mid-run
  lossy ``DelaySpec``       probabilistic / periodic connection
                            drop filters seeded from the scenario
                            hash (``plan_loss``)
  adaptive faults           node observations feed an
                            ``AdaptiveController``; fired triggers
                            crash nodes, cut links or swap live
                            protocols for Byzantine behaviours
  ========================  =====================================

  Simulated milliseconds — fault timestamps and workload
  ``start_time_ms`` values alike — map to wall-clock seconds through
  ``time_scale`` (default: 1 simulated ms = 1 real ms).  Timings in the
  result are wall-clock and therefore not reproducible; the
  delivery/safety verdicts are, and
  :mod:`repro.scenarios.conformance` asserts they match the simulation.

Grid cells declare their backend via ``spec.backend`` (also a grid axis:
``expand_grid(base, {"backend": ["simulation", "asyncio"]})``), and the
scenario hash — the sweep executor's cache key — includes it, so results
from different backends never shadow each other in the cache.
"""

from __future__ import annotations

import abc
import asyncio
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.network.asyncio_runtime.cluster import AsyncioCluster
from repro.scenarios.engine import (
    AdaptiveRunState,
    ScenarioResult,
    build_protocols,
    freeze_result,
    make_adaptive_observer,
    place_byzantine,
    simulate_scenario,
    validate_topology,
)
from repro.scenarios.faults import (
    CrashAt,
    DelayedStart,
    FaultEvent,
    JoinAt,
    LeaveAt,
    LinkDropWindow,
    RewireLinkAt,
)
from repro.scenarios.spec import BACKEND_NAMES, BroadcastSpec, ScenarioSpec
from repro.topology.generators import Topology


class ScenarioBackend(abc.ABC):
    """Executes one :class:`ScenarioSpec` and freezes its result."""

    #: Registry key; must match the spec's ``backend`` field values.
    name: ClassVar[str]

    @abc.abstractmethod
    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        """Run ``spec`` end to end."""

    def validate(self, spec: ScenarioSpec) -> None:
        """Reject spec features this backend cannot express (no-op here)."""


class SimulationBackend(ScenarioBackend):
    """The discrete-event simulator (default, fully deterministic)."""

    name = "simulation"

    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        return simulate_scenario(spec)


# ----------------------------------------------------------------------
# Fault-event → runtime-action translation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeCrash:
    """Crash ``pid`` at ``at_s`` wall-clock seconds after the epoch."""

    pid: int
    at_s: float


@dataclass(frozen=True)
class LinkDropFilter:
    """Drop traffic on ``{u, v}`` during ``[start_s, end_s)`` (epoch-relative)."""

    u: int
    v: int
    start_s: float
    end_s: Optional[float]


@dataclass(frozen=True)
class DeferredStart:
    """Keep ``pid`` dormant until ``wake_s`` seconds after the epoch."""

    pid: int
    wake_s: float


@dataclass(frozen=True)
class DormantJoin:
    """Keep ``pid`` a drop-dormant non-member until ``at_s`` after the epoch."""

    pid: int
    at_s: float


@dataclass(frozen=True)
class NodeLeave:
    """``pid`` leaves (fail-silent + link teardown) at ``at_s`` after the epoch."""

    pid: int
    at_s: float


@dataclass(frozen=True)
class LinkRewire:
    """Replace ``{pid, old_peer}`` with ``{pid, new_peer}`` at ``at_s``."""

    pid: int
    old_peer: int
    new_peer: int
    at_s: float


RuntimeAction = Union[
    NodeCrash, LinkDropFilter, DeferredStart, DormantJoin, NodeLeave, LinkRewire
]


@dataclass(frozen=True)
class ScheduledBroadcast:
    """One workload broadcast on the wall clock: fire at ``at_s`` after the epoch."""

    broadcast: BroadcastSpec
    at_s: float
    payload: bytes


@dataclass(frozen=True)
class ConnectionLoss:
    """Probabilistic loss filter for one link of the asyncio runtime.

    Mirrors the scenario's lossy delay model at the connection level:
    every message on ``{u, v}`` is lost with ``probability``, drawn from
    a ``seed``-keyed RNG.  The seed derives from the scenario hash, so
    the drop sequence is fixed per scenario even though wall-clock
    message ordering is not.
    """

    u: int
    v: int
    probability: float
    seed: int


@dataclass(frozen=True)
class ConnectionBurst:
    """Periodic outage bursts for one link of the asyncio runtime."""

    u: int
    v: int
    period_s: float
    burst_s: float


class AsyncioBackend(ScenarioBackend):
    """Runs a scenario on the asyncio TCP runtime (localhost sockets).

    Parameters
    ----------
    time_scale:
        Wall-clock seconds per simulated millisecond of the spec's fault
        timestamps and workload start times; the default ``1e-3`` keeps
        1 simulated ms = 1 real ms.
    delivery_timeout_s:
        How long to wait for every correct process to deliver before
        freezing a partial outcome (the verdicts then report the missing
        deliveries instead of hanging).
    connect_timeout_s:
        Readiness-barrier budget for cluster startup.
    """

    name = "asyncio"

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        time_scale: float = 1e-3,
        delivery_timeout_s: float = 20.0,
        connect_timeout_s: float = 10.0,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")
        self.host = host
        self.time_scale = time_scale
        self.delivery_timeout_s = delivery_timeout_s
        self.connect_timeout_s = connect_timeout_s

    # -- translation ---------------------------------------------------
    def validate(self, spec: ScenarioSpec) -> None:
        if spec.shared_bandwidth_bps is not None:
            raise ConfigurationError(
                "the asyncio backend runs over real sockets and cannot "
                "emulate a shared bandwidth cap; use the simulation backend"
            )

    def _scale(self, time_ms: float) -> float:
        return time_ms * self.time_scale

    def plan_faults(self, faults: Tuple[FaultEvent, ...]) -> List[RuntimeAction]:
        """Translate the spec's fault events into runtime actions.

        Pure and deterministic — unit-testable without opening sockets.
        """
        actions: List[RuntimeAction] = []
        for fault in faults:
            if isinstance(fault, CrashAt):
                actions.append(NodeCrash(pid=fault.pid, at_s=self._scale(fault.time_ms)))
            elif isinstance(fault, LinkDropWindow):
                actions.append(
                    LinkDropFilter(
                        u=fault.u,
                        v=fault.v,
                        start_s=self._scale(fault.start_ms),
                        end_s=None if fault.end_ms is None else self._scale(fault.end_ms),
                    )
                )
            elif isinstance(fault, DelayedStart):
                if fault.time_ms < 0:
                    # Mirror SimulatedNetwork.delay_start: the same spec
                    # must error identically on every backend.
                    raise ConfigurationError(
                        f"start time must be non-negative, got {fault.time_ms}"
                    )
                actions.append(
                    DeferredStart(pid=fault.pid, wake_s=self._scale(fault.time_ms))
                )
            elif isinstance(fault, JoinAt):
                actions.append(
                    DormantJoin(pid=fault.pid, at_s=self._scale(fault.time_ms))
                )
            elif isinstance(fault, LeaveAt):
                actions.append(
                    NodeLeave(pid=fault.pid, at_s=self._scale(fault.time_ms))
                )
            elif isinstance(fault, RewireLinkAt):
                actions.append(
                    LinkRewire(
                        pid=fault.pid,
                        old_peer=fault.old_peer,
                        new_peer=fault.new_peer,
                        at_s=self._scale(fault.time_ms),
                    )
                )
            else:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"the asyncio backend does not support fault {fault!r}"
                )
        return actions

    def plan_workload(self, spec: ScenarioSpec) -> List[ScheduledBroadcast]:
        """Translate the spec's workload into a wall-clock broadcast schedule.

        Pure and deterministic — the same canonical order the simulation
        backend initiates broadcasts in, with ``start_time_ms`` scaled
        through ``time_scale`` exactly like the fault timestamps.
        """
        return [
            ScheduledBroadcast(
                broadcast=broadcast,
                at_s=self._scale(broadcast.start_time_ms),
                payload=spec.payload_for(broadcast),
            )
            for broadcast in spec.broadcasts()
        ]

    def plan_loss(
        self, spec: ScenarioSpec, topology: Topology
    ) -> Tuple[List[ConnectionLoss], List[ConnectionBurst]]:
        """Translate the spec's lossy delay regime into connection filters.

        Pure and deterministic — one probabilistic filter and/or one
        periodic burst per undirected link, with the loss-filter seeds
        derived from the scenario hash and the link endpoints (so two
        scenarios, or two links, never share a drop sequence).  Burst
        times scale through ``time_scale`` like every other timestamp.
        """
        losses: List[ConnectionLoss] = []
        bursts: List[ConnectionBurst] = []
        delay = spec.delay
        if not delay.is_lossy:
            return losses, bursts
        base_seed = int(spec.scenario_hash()[:16], 16)
        for u in topology.nodes:
            for v in sorted(topology.neighbors(u)):
                if v <= u:
                    continue
                if delay.loss > 0.0:
                    losses.append(
                        ConnectionLoss(
                            u=u,
                            v=v,
                            probability=delay.loss,
                            seed=base_seed ^ (u * 0x9E3779B1 + v),
                        )
                    )
                if delay.burst_period_ms > 0.0 and delay.burst_len_ms > 0.0:
                    bursts.append(
                        ConnectionBurst(
                            u=u,
                            v=v,
                            period_s=self._scale(delay.burst_period_ms),
                            burst_s=self._scale(delay.burst_len_ms),
                        )
                    )
        return losses, bursts

    @staticmethod
    def arm(cluster: AsyncioCluster, actions: List[RuntimeAction]) -> None:
        """Install runtime actions on a built (not yet started) cluster.

        Immediate crashes and dormancy are effective right away; timed
        actions are armed when the cluster's epoch opens.
        """
        for action in actions:
            if isinstance(action, NodeCrash):
                cluster.schedule_crash(action.pid, action.at_s)
            elif isinstance(action, LinkDropFilter):
                cluster.add_link_drop_window(
                    action.u, action.v, action.start_s, action.end_s
                )
            elif isinstance(action, DeferredStart):
                cluster.delay_start(action.pid, action.wake_s)
            elif isinstance(action, DormantJoin):
                cluster.join_at(action.pid, action.at_s)
            elif isinstance(action, NodeLeave):
                cluster.schedule_leave(action.pid, action.at_s)
            elif isinstance(action, LinkRewire):
                cluster.schedule_rewire(
                    action.pid, action.old_peer, action.new_peer, action.at_s
                )

    @staticmethod
    def arm_loss(
        cluster: AsyncioCluster,
        losses: List[ConnectionLoss],
        bursts: List[ConnectionBurst],
    ) -> None:
        """Install the planned connection-level loss filters on a cluster."""
        for loss in losses:
            cluster.add_loss_filter(loss.u, loss.v, loss.probability, loss.seed)
        for burst in bursts:
            cluster.add_periodic_drop_window(
                burst.u, burst.v, burst.period_s, burst.burst_s
            )

    def arm_adaptive(
        self,
        cluster: AsyncioCluster,
        spec: ScenarioSpec,
        byzantine: Optional[Dict[int, object]] = None,
    ) -> AdaptiveRunState:
        """Install the spec's adaptive faults on a built cluster.

        The asyncio twin of :func:`repro.scenarios.engine.arm_adaptive`,
        built on the same
        :func:`~repro.scenarios.engine.make_adaptive_observer` core so
        the trigger semantics cannot drift between backends: crashes go
        fail-silent, link cuts open drop windows at the current
        epoch-relative time (durations scale through ``time_scale``),
        Byzantine conversions swap the live protocol instance.  Returns
        the mutable state the run folds into result accounting.
        """
        state = AdaptiveRunState()

        def cut_link(u: int, v: int, duration_ms) -> None:
            now_s = cluster.elapsed_s()
            end_s = (
                None if duration_ms is None else now_s + self._scale(duration_ms)
            )
            cluster.add_link_drop_window(u, v, now_s, end_s)

        observer = make_adaptive_observer(
            spec,
            state,
            topology=cluster.topology,
            byzantine=dict(byzantine or {}),
            crash=cluster.crash,
            cut_link=cut_link,
            live_protocol=lambda pid: cluster.nodes[pid].protocol,
            install_protocol=cluster.replace_protocol,
        )
        if observer is not None:
            cluster.set_observer(observer)
        return state

    # -- execution -----------------------------------------------------
    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        self.validate(spec)
        return asyncio.run(self.run_async(spec))

    async def run_async(self, spec: ScenarioSpec) -> ScenarioResult:
        """Materialize the spec into an :class:`AsyncioCluster` and run it."""
        topology = spec.topology.build(spec.seed)
        validate_topology(spec, topology)
        byzantine = place_byzantine(spec, topology)
        protocols = build_protocols(spec, topology, byzantine)
        collector = MetricsCollector()
        cluster = AsyncioCluster(
            topology,
            spec.system(),
            protocols,
            host=self.host,
            collector=collector,
        )
        self.arm(cluster, self.plan_faults(spec.faults))
        self.arm_loss(cluster, *self.plan_loss(spec, topology))
        adaptive = self.arm_adaptive(cluster, spec, byzantine)

        schedule = self.plan_workload(spec)
        crashed = {
            fault.pid
            for fault in spec.faults
            if isinstance(fault, (CrashAt, LeaveAt))
        }
        # Late joiners are excluded from the delivery *wait* only (they
        # missed the early traffic, so blocking on them would run every
        # churn cell to the timeout); freeze_result still accounts them
        # as correct, and totality is suppressed under churn anyway.
        late = {fault.pid for fault in spec.faults if isinstance(fault, JoinAt)}
        correct = [
            pid
            for pid in topology.nodes
            if pid not in byzantine and pid not in crashed and pid not in late
        ]
        try:
            await cluster.start(connect_timeout=self.connect_timeout_s)
            cluster.open_epoch()
            loop = asyncio.get_running_loop()
            # Replay the workload schedule on wall-clock timers: each
            # broadcast fires at its (scaled) start time relative to the
            # epoch, mirroring the simulator's schedule_at initiation.
            for scheduled in schedule:
                delay = cluster.epoch + scheduled.at_s - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                await cluster.broadcast(
                    scheduled.broadcast.source,
                    scheduled.payload,
                    scheduled.broadcast.bid,
                )
            # Wait for the verdict-relevant deliveries — per broadcast
            # key, so an unscheduled delivery never masks a scheduled
            # one; a scenario whose faults prevent totality times out
            # here and freezes the partial outcome instead of hanging.
            await cluster.wait_for_deliveries_of(
                [scheduled.broadcast.key for scheduled in schedule],
                timeout=self.delivery_timeout_s,
                processes=correct,
            )
            if cluster.epoch is not None:
                collector.record_time((loop.time() - cluster.epoch) * 1000.0)
            dropped = cluster.dropped_messages
        finally:
            await cluster.stop()

        return freeze_result(
            spec,
            topology=topology,
            byzantine={
                **{pid: adv.behaviour for pid, adv in byzantine.items()},
                **adaptive.converted,
            },
            metrics=collector.snapshot(),
            dropped_messages=dropped,
            # Delivery timestamps are wall-clock ms relative to the
            # epoch; nominal start times are simulated ms.  The factor
            # maps the latter into the former so per-broadcast latency
            # is measured in one domain whatever the time_scale.
            start_time_factor=self.time_scale * 1000.0,
            extra_crashed=tuple(sorted(adaptive.crashed)),
        )


#: Registered backends, keyed by the spec's ``backend`` field values.
BACKENDS: Dict[str, type] = {
    SimulationBackend.name: SimulationBackend,
    AsyncioBackend.name: AsyncioBackend,
}

assert tuple(BACKENDS) == BACKEND_NAMES, "spec.BACKEND_NAMES out of sync"


def get_backend(name: str) -> ScenarioBackend:
    """A default-configured backend instance for ``name``."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {tuple(BACKENDS)}"
        ) from None


__all__ = [
    "ScenarioBackend",
    "SimulationBackend",
    "AsyncioBackend",
    "NodeCrash",
    "LinkDropFilter",
    "DeferredStart",
    "DormantJoin",
    "NodeLeave",
    "LinkRewire",
    "RuntimeAction",
    "ScheduledBroadcast",
    "ConnectionLoss",
    "ConnectionBurst",
    "BACKENDS",
    "get_backend",
]
