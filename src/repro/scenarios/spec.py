"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a plain, hashable, picklable description of one
simulated broadcast workload: which topology to generate, which delay
regime the links follow, which protocol configuration runs on the correct
processes, where the Byzantine processes sit (see
:mod:`repro.scenarios.placement`), which fault events fire during the
run (see :mod:`repro.scenarios.faults`), and which broadcasts the
sources initiate (:class:`WorkloadSpec`; the default is the single
broadcast described by ``source``/``bid``).

Being pure data, specs can be expanded into grids
(:mod:`repro.scenarios.grid`), shipped to worker processes by the
parallel sweep executor (:mod:`repro.runner.parallel`) and hashed into a
stable cache key with :meth:`ScenarioSpec.scenario_hash`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.modifications import ModificationSet
from repro.network.adversary import BEHAVIOUR_NAMES
from repro.network.simulation.delays import (
    AsynchronousDelay,
    BurstyLossWindow,
    DelayModel,
    FixedDelay,
    LossyDelay,
    UniformDelay,
)
from repro.scenarios.faults import (
    ADAPTIVE_FAULT_TYPES,
    AdaptiveFault,
    FaultEvent,
    TurnByzantineWhen,
)
from repro.scenarios.placement import PLACEMENT_STRATEGIES
from repro.topology.generators import (
    Topology,
    complete_topology,
    harary_topology,
    line_topology,
    random_regular_topology,
    ring_topology,
    torus_topology,
)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a communication graph.

    ``kind`` selects the generator:

    * ``"random_regular"`` — the paper's workload: a random ``k``-regular
      graph regenerated until it is ``min_connectivity``-connected (the
      scenario seed drives the generation);
    * ``"harary"`` — the minimal ``k``-connected graph H(k, n);
    * ``"complete"`` / ``"ring"`` / ``"line"`` — deterministic classics;
    * ``"torus"`` — a ``rows × cols`` periodic grid (``n`` is ignored and
      derived as ``rows * cols``).
    """

    kind: str = "random_regular"
    n: int = 10
    k: int = 0
    rows: int = 0
    cols: int = 0
    min_connectivity: Optional[int] = None

    _KINDS = ("random_regular", "harary", "complete", "ring", "line", "torus")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"unknown topology kind {self.kind!r}; expected one of {self._KINDS}"
            )

    @property
    def node_count(self) -> int:
        """Number of processes the built topology will have."""
        if self.kind == "torus":
            return self.rows * self.cols
        return self.n

    def build(self, seed: int = 0) -> Topology:
        """Generate the topology (``seed`` only matters for random kinds).

        Generation is memoized on ``(spec, seed)``: sweeps run many cells
        over the same graph (reference and candidate configurations share
        topologies by design), and regenerating a random regular graph —
        connectivity check included — costs more than simulating a small
        cell.  Safe because :class:`~repro.topology.Topology` is
        immutable and generation is deterministic for a given seed.
        """
        return _build_topology(self, seed)


@lru_cache(maxsize=128)
def _build_topology(spec: "TopologySpec", seed: int) -> Topology:
    if spec.kind == "random_regular":
        return random_regular_topology(
            spec.n, spec.k, seed=seed, min_connectivity=spec.min_connectivity
        )
    if spec.kind == "harary":
        return harary_topology(spec.n, spec.k)
    if spec.kind == "complete":
        return complete_topology(spec.n)
    if spec.kind == "ring":
        return ring_topology(spec.n)
    if spec.kind == "line":
        return line_topology(spec.n)
    return torus_topology(spec.rows, spec.cols)


@dataclass(frozen=True)
class DelaySpec:
    """Declarative description of a link-delay model.

    ``kind`` is ``"fixed"`` (the paper's synchronous 50 ms setting),
    ``"normal"`` (the asynchronous Normal(mean, std) setting) or
    ``"uniform"`` (delays drawn from ``[low_ms, high_ms]``).

    The loss fields make the links unreliable on top of any kind:
    ``loss`` drops each message independently with that probability
    (:class:`~repro.network.simulation.delays.LossyDelay`), and a
    positive ``burst_period_ms`` adds periodic outage bursts of
    ``burst_len_ms``
    (:class:`~repro.network.simulation.delays.BurstyLossWindow`).  The
    lossless defaults are suppressed from the scenario hash, so every
    pre-loss spec keeps its hash, golden summary and cache slot.
    """

    kind: str = "fixed"
    mean_ms: float = 50.0
    std_ms: float = 50.0
    low_ms: float = 10.0
    high_ms: float = 100.0
    loss: float = 0.0
    burst_period_ms: float = 0.0
    burst_len_ms: float = 0.0

    _KINDS = ("fixed", "normal", "uniform")
    # Lossless defaults are omitted from the canonical hash form (see
    # ``_canonical``) so pre-loss scenario hashes stay valid.
    _HASH_SUPPRESS_DEFAULTS = {
        "loss": 0.0,
        "burst_period_ms": 0.0,
        "burst_len_ms": 0.0,
    }

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"unknown delay kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if not 0.0 <= self.loss <= 1.0:
            raise ConfigurationError(
                f"loss probability must be within [0, 1], got {self.loss}"
            )
        if self.burst_period_ms < 0 or self.burst_len_ms < 0:
            raise ConfigurationError(
                "burst window times must be non-negative, got "
                f"period={self.burst_period_ms}, len={self.burst_len_ms}"
            )
        if self.burst_len_ms > 0 and self.burst_period_ms <= 0:
            raise ConfigurationError(
                "a burst length needs a positive burst_period_ms"
            )
        if self.burst_period_ms > 0 and self.burst_len_ms > self.burst_period_ms:
            raise ConfigurationError(
                f"burst_len_ms ({self.burst_len_ms}) must not exceed "
                f"burst_period_ms ({self.burst_period_ms})"
            )

    @property
    def is_lossy(self) -> bool:
        """Whether this delay regime may lose messages."""
        return self.loss > 0.0 or (
            self.burst_period_ms > 0.0 and self.burst_len_ms > 0.0
        )

    def build(self) -> DelayModel:
        """Instantiate the matching :class:`DelayModel` (loss wrapped last)."""
        if self.kind == "fixed":
            model: DelayModel = FixedDelay(self.mean_ms)
        elif self.kind == "normal":
            model = AsynchronousDelay(self.mean_ms, self.std_ms)
        else:
            model = UniformDelay(self.low_ms, self.high_ms)
        if self.burst_period_ms > 0.0 and self.burst_len_ms > 0.0:
            model = BurstyLossWindow(
                base=model,
                period_ms=self.burst_period_ms,
                burst_ms=self.burst_len_ms,
            )
        if self.loss > 0.0:
            model = LossyDelay(base=model, loss_probability=self.loss)
        return model


@dataclass(frozen=True)
class AdversarySpec:
    """``count`` processes exhibiting one Byzantine behaviour.

    ``behaviour`` is one of :data:`repro.network.adversary.BEHAVIOUR_NAMES`
    (``"mute"``, ``"drop"``, ``"forge"``, ``"equivocate"``,
    ``"alter_sender"``, ``"send_empty"``, ``"limited_broadcast"``,
    ``"truncate_path"``); ``placement`` is one of the strategies of
    :mod:`repro.scenarios.placement` (``"random"``, ``"max_degree"``,
    ``"articulation_adjacent"``).  For ``"equivocate"`` the first slot is
    always the broadcast source — the attack only makes sense there —
    and ``conflicting_payload`` optionally pins the second payload the
    equivocator sends (default: derived deterministically from the
    genuine payload and the scenario seed).
    """

    behaviour: str = "mute"
    count: int = 1
    placement: str = "random"
    drop_probability: float = 0.5
    conflicting_payload: Optional[bytes] = None

    # Fields appended after the PR 1 hash freeze, suppressed at their
    # defaults so every pre-existing scenario hash (goldens, cache
    # slots, corpus keys) stays byte-identical.
    _HASH_SUPPRESS_DEFAULTS = {"conflicting_payload": None}

    def __post_init__(self) -> None:
        if self.behaviour not in BEHAVIOUR_NAMES:
            raise ConfigurationError(
                f"unknown behaviour {self.behaviour!r}; expected one of {BEHAVIOUR_NAMES}"
            )
        if self.placement not in PLACEMENT_STRATEGIES:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {tuple(PLACEMENT_STRATEGIES)}"
            )
        if self.count < 0:
            raise ConfigurationError(f"count must be non-negative, got {self.count}")
        if self.conflicting_payload is not None:
            if self.behaviour != "equivocate":
                raise ConfigurationError(
                    "conflicting_payload only applies to the 'equivocate' "
                    f"behaviour, not {self.behaviour!r}"
                )
            if not isinstance(self.conflicting_payload, bytes):
                raise ConfigurationError(
                    "conflicting_payload must be bytes, got "
                    f"{type(self.conflicting_payload).__name__}"
                )


@dataclass(frozen=True)
class BroadcastSpec:
    """One broadcast of a workload.

    ``source`` initiates broadcast identifier ``bid`` at absolute
    scenario time ``start_time_ms`` (simulated milliseconds on the
    simulation backend, scaled wall-clock on the asyncio backend).
    ``payload_seed`` selects the deterministic payload the source sends:
    seed 0 is the classic ``repro-scenario-`` pattern every
    single-broadcast run uses, any other seed derives a distinct
    ``payload_size``-byte payload (see :meth:`ScenarioSpec.payload_for`),
    so repeated sensor readings can carry distinguishable content.

    ``successor`` optionally names the process broadcasting *next* in a
    causally-chained workload (see :meth:`WorkloadSpec.causal_chain`):
    the chain is what the RCO protocols order, and the causal oracle
    reads the realized dependencies off the delivery trace.  The
    ``None`` default is suppressed from the scenario hash, so every
    pre-RCO spec keeps its hash, golden summary and cache slot.
    """

    source: int = 0
    bid: int = 0
    payload_seed: int = 0
    start_time_ms: float = 0.0
    successor: Optional[int] = None

    _HASH_SUPPRESS_DEFAULTS = {"successor": None}

    def __post_init__(self) -> None:
        if self.start_time_ms < 0:
            raise ConfigurationError(
                f"broadcast start time must be non-negative, got {self.start_time_ms}"
            )
        if self.successor is not None and self.successor < 0:
            raise ConfigurationError(
                f"successor must be a process id, got {self.successor}"
            )

    @property
    def key(self) -> Tuple[int, int]:
        """The ``(source, bid)`` broadcast key used by the metrics layer."""
        return (self.source, self.bid)


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative list of broadcasts executed in one scenario run.

    Broadcast keys ``(source, bid)`` must be unique — the metrics layer
    accounts deliveries per key.  Schedule order is canonical: the
    engine always initiates broadcasts sorted by
    ``(start_time_ms, source, bid)``, so two workloads holding the same
    broadcasts in different tuple order execute identically (their
    scenario hashes still differ; prefer the generators below, which
    emit sorted tuples).
    """

    broadcasts: Tuple[BroadcastSpec, ...] = (BroadcastSpec(),)

    def __post_init__(self) -> None:
        if not self.broadcasts:
            raise ConfigurationError("a workload needs at least one broadcast")
        keys = [b.key for b in self.broadcasts]
        if len(set(keys)) != len(keys):
            duplicates = sorted({key for key in keys if keys.count(key) > 1})
            raise ConfigurationError(
                f"duplicate broadcast keys (source, bid) in workload: {duplicates}"
            )

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, source: int = 0, bid: int = 0) -> "WorkloadSpec":
        """The classic one-shot broadcast (equivalent to ``source``/``bid``)."""
        return cls(broadcasts=(BroadcastSpec(source=source, bid=bid),))

    @classmethod
    def repeated(
        cls,
        source: int,
        n: int,
        interval_ms: float,
        *,
        start_ms: float = 0.0,
        first_bid: int = 0,
    ) -> "WorkloadSpec":
        """Sensor-style workload: ``source`` broadcasts ``n`` times.

        Broadcast ``i`` carries identifier ``first_bid + i`` and payload
        seed ``i``, starting at ``start_ms + i * interval_ms``.
        """
        if n < 1:
            raise ConfigurationError(f"repeated workload needs n >= 1, got {n}")
        if interval_ms < 0:
            raise ConfigurationError(
                f"broadcast interval must be non-negative, got {interval_ms}"
            )
        return cls(
            broadcasts=tuple(
                BroadcastSpec(
                    source=source,
                    bid=first_bid + index,
                    payload_seed=index,
                    start_time_ms=start_ms + index * interval_ms,
                )
                for index in range(n)
            )
        )

    @classmethod
    def round_robin(
        cls,
        sources: Sequence[int],
        n: int,
        interval_ms: float = 0.0,
        *,
        start_ms: float = 0.0,
    ) -> "WorkloadSpec":
        """``n`` broadcasts cycling over ``sources`` (one every interval).

        Broadcast ``i`` comes from ``sources[i % len(sources)]`` with a
        per-source monotonically increasing identifier, mirroring a
        sensor field where every node reports in turn.
        """
        sources = tuple(sources)
        if not sources:
            raise ConfigurationError("round_robin workload needs at least one source")
        if len(set(sources)) != len(sources):
            raise ConfigurationError(f"round_robin sources must be unique: {sources}")
        if n < 1:
            raise ConfigurationError(f"round_robin workload needs n >= 1, got {n}")
        if interval_ms < 0:
            raise ConfigurationError(
                f"broadcast interval must be non-negative, got {interval_ms}"
            )
        return cls(
            broadcasts=tuple(
                BroadcastSpec(
                    source=sources[index % len(sources)],
                    bid=index // len(sources),
                    payload_seed=index,
                    start_time_ms=start_ms + index * interval_ms,
                )
                for index in range(n)
            )
        )

    @classmethod
    def causal_chain(
        cls,
        sources: Sequence[int],
        interval_ms: float = 40.0,
        *,
        start_ms: float = 0.0,
    ) -> "WorkloadSpec":
        """A causally-chained workload: each broadcast names its successor.

        Broadcast ``i`` comes from ``sources[i]`` (repeats allowed — a
        process may appear several times in the chain, taking the next
        free per-source identifier each time), starts at
        ``start_ms + i * interval_ms`` and carries
        ``successor=sources[i + 1]`` — the process that reacts to it by
        broadcasting next, the shape a causally-consistent application
        (payment → receipt → audit) produces.  Stagger the interval
        above the expected delivery latency and each broadcast lands in
        its successor's causal past, which the RCO protocols then
        enforce at every correct process.
        """
        sources = tuple(sources)
        if len(sources) < 2:
            raise ConfigurationError(
                f"causal_chain needs at least two links, got {sources}"
            )
        if interval_ms < 0:
            raise ConfigurationError(
                f"broadcast interval must be non-negative, got {interval_ms}"
            )
        next_bid: dict = {}
        broadcasts = []
        for index, source in enumerate(sources):
            bid = next_bid.get(source, 0)
            next_bid[source] = bid + 1
            broadcasts.append(
                BroadcastSpec(
                    source=source,
                    bid=bid,
                    payload_seed=index,
                    start_time_ms=start_ms + index * interval_ms,
                    successor=sources[index + 1]
                    if index + 1 < len(sources)
                    else None,
                )
            )
        return cls(broadcasts=tuple(broadcasts))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def schedule(self) -> Tuple[BroadcastSpec, ...]:
        """The broadcasts in canonical initiation order."""
        return tuple(
            sorted(
                self.broadcasts,
                key=lambda b: (b.start_time_ms, b.source, b.bid),
            )
        )

    @property
    def is_trivial(self) -> bool:
        """Whether this is exactly one classic time-0, seed-0 broadcast.

        A trivial workload is indistinguishable from the legacy
        ``source``/``bid`` single-broadcast form;
        :class:`ScenarioSpec.__post_init__` normalizes it away so the
        spec (and its scenario hash, and therefore its cache slot and
        golden summaries) stays byte-identical to the pre-workload era.
        """
        return (
            len(self.broadcasts) == 1
            and self.broadcasts[0].payload_seed == 0
            and self.broadcasts[0].start_time_ms == 0.0
            and self.broadcasts[0].successor is None
        )


#: Names of the registered execution backends (see
#: :mod:`repro.scenarios.backends`, which asserts it stays in sync).
BACKEND_NAMES = ("simulation", "asyncio")


@dataclass(frozen=True)
class ScenarioSpec:
    """One reproducible broadcast scenario.

    Everything the run depends on is in the spec, so two runs of the same
    spec — in the same process or in different worker processes — produce
    identical results.  ``seed`` drives the topology generation, the link
    delays, the adversary placement and any randomized behaviour.

    ``backend`` selects the execution backend the sweep executors hand
    the cell to: ``"simulation"`` (discrete-event, fully deterministic)
    or ``"asyncio"`` (real TCP sockets on localhost; timings are
    wall-clock, delivery/safety verdicts must match the simulation — see
    :mod:`repro.scenarios.conformance`).
    """

    name: str = "scenario"
    topology: TopologySpec = field(default_factory=TopologySpec)
    delay: DelaySpec = field(default_factory=DelaySpec)
    protocol: str = "cross_layer"
    modifications: ModificationSet = field(default_factory=ModificationSet.dolev_optimized)
    f: int = 0
    payload_size: int = 16
    source: int = 0
    bid: int = 0
    seed: int = 0
    adversaries: Tuple[AdversarySpec, ...] = ()
    faults: Tuple[FaultEvent, ...] = ()
    max_events: Optional[int] = 5_000_000
    shared_bandwidth_bps: Optional[float] = None
    backend: str = "simulation"
    #: ``None`` means the legacy single broadcast ``(source, bid)``.  A
    #: trivial workload (one time-0, seed-0 broadcast) is normalized to
    #: ``None`` at construction, so it compares, hashes and caches
    #: exactly like the equivalent pre-workload spec.
    workload: Optional[WorkloadSpec] = None
    #: Adaptive (trigger-driven) adversary faults; see
    #: :mod:`repro.scenarios.faults`.  The empty default is suppressed
    #: from the scenario hash so pre-adaptive hashes stay valid.
    adaptive: Tuple[AdaptiveFault, ...] = ()

    # Defaults omitted from the canonical hash form (see ``_canonical``
    # and :meth:`scenario_hash`): hashes of specs predating each field
    # stay valid, which the golden files pin.  Values are compared
    # post-canonicalization (tuples become lists).
    _HASH_SUPPRESS_DEFAULTS = {
        "backend": "simulation",
        "workload": None,
        "adaptive": [],
    }

    def __post_init__(self) -> None:
        converted = {
            fault.pid
            for fault in self.adaptive
            if isinstance(fault, TurnByzantineWhen)
        }
        requested = sum(spec.count for spec in self.adversaries) + len(converted)
        if requested > self.f:
            raise ConfigurationError(
                f"{requested} Byzantine processes requested (static placements "
                f"plus adaptive conversions) but f={self.f}"
            )
        for fault in self.adaptive:
            if not isinstance(fault, ADAPTIVE_FAULT_TYPES):
                raise ConfigurationError(
                    f"unknown adaptive fault {fault!r}; expected one of "
                    f"{tuple(t.__name__ for t in ADAPTIVE_FAULT_TYPES)}"
                )
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.workload is not None and self.workload.is_trivial:
            (broadcast,) = self.workload.broadcasts
            object.__setattr__(self, "source", broadcast.source)
            object.__setattr__(self, "bid", broadcast.bid)
            object.__setattr__(self, "workload", None)

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    def system(self) -> SystemConfig:
        """The :class:`SystemConfig` shared by every protocol instance."""
        return SystemConfig.for_system(self.topology.node_count, self.f)

    def payload(self) -> bytes:
        """A deterministic payload of ``payload_size`` bytes."""
        pattern = b"repro-scenario-"
        data = (pattern * (self.payload_size // len(pattern) + 1))[: self.payload_size]
        return data if data else b""

    def broadcasts(self) -> Tuple[BroadcastSpec, ...]:
        """The workload's broadcasts in canonical initiation order.

        A legacy spec (``workload=None``) yields exactly one time-0
        broadcast from ``source`` with identifier ``bid``.
        """
        if self.workload is None:
            return (BroadcastSpec(source=self.source, bid=self.bid),)
        return self.workload.schedule()

    def payload_for(self, broadcast: BroadcastSpec) -> bytes:
        """The deterministic payload ``broadcast`` carries.

        Seed 0 is the classic :meth:`payload` pattern (so a trivial
        workload's bytes match the legacy single-broadcast run); other
        seeds stretch a seed-keyed SHA-256 stream to ``payload_size``.
        """
        if broadcast.payload_seed == 0:
            return self.payload()
        chunks = []
        length = 0
        counter = 0
        while length < self.payload_size:
            chunk = hashlib.sha256(
                f"repro-workload-{broadcast.payload_seed}-{counter}".encode("utf-8")
            ).digest()
            chunks.append(chunk)
            length += len(chunk)
            counter += 1
        return b"".join(chunks)[: self.payload_size]

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy of this scenario with a different seed."""
        return replace(self, seed=seed)

    def with_backend(self, backend: str) -> "ScenarioSpec":
        """A copy of this scenario targeting a different execution backend."""
        return replace(self, backend=backend)

    def with_workload(self, workload: Optional[WorkloadSpec]) -> "ScenarioSpec":
        """A copy of this scenario running a different broadcast workload."""
        return replace(self, workload=workload)

    def with_delay(self, delay: DelaySpec) -> "ScenarioSpec":
        """A copy of this scenario under a different delay regime."""
        return replace(self, delay=delay)

    def with_adaptive(self, adaptive: Tuple[AdaptiveFault, ...]) -> "ScenarioSpec":
        """A copy of this scenario with different adaptive faults."""
        return replace(self, adaptive=tuple(adaptive))

    @property
    def is_lossy(self) -> bool:
        """Whether the links may lose messages (lossy delay regime)."""
        return self.delay.is_lossy

    @property
    def is_adaptive(self) -> bool:
        """Whether the scenario carries adaptive (trigger-driven) faults."""
        return bool(self.adaptive)

    @property
    def has_churn(self) -> bool:
        """Whether the scenario carries membership-churn faults."""
        from repro.scenarios.faults import CHURN_FAULT_TYPES

        return any(isinstance(fault, CHURN_FAULT_TYPES) for fault in self.faults)

    def scenario_hash(self) -> str:
        """Stable hex digest identifying this scenario.

        Used as the parallel executor's cache key: two specs with equal
        fields hash identically across processes and interpreter runs
        (unlike ``hash()``, which is salted per interpreter).  Every
        discriminating field is part of the key — the backend (an
        asyncio cell never shadows the simulation cell of the same
        scenario), the workload, the delay-loss fields and the adaptive
        faults — but fields still at the value they had before they
        existed are omitted from the canonical form (see the
        ``_HASH_SUPPRESS_DEFAULTS`` maps on the spec classes), so hashes
        of specs predating each feature stay valid.  The golden files
        pin them; the executors' pickle caches are still invalidated by
        their own version bumps whenever the record layout changes.
        """
        canonical = json.dumps(
            _canonical(self), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical(value):
    """Recursively convert a spec to JSON-serializable canonical form.

    Dataclasses may declare a ``_HASH_SUPPRESS_DEFAULTS`` class attribute
    mapping field names to their canonicalized historical default: a
    field still holding that default is dropped from the canonical form,
    which is how new spec fields are introduced without invalidating the
    hashes (and therefore golden files and cache slots) of every spec
    that does not use them.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields_dict = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.compare
        }
        suppress = getattr(type(value), "_HASH_SUPPRESS_DEFAULTS", None)
        if suppress:
            for name, default in sorted(suppress.items()):
                if name in fields_dict and fields_dict[name] == default:
                    del fields_dict[name]
        return {"__type__": type(value).__name__, **fields_dict}
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        # repro-lint: allow[DET002] -- keys may be mixed-type (unsortable); json.dumps(sort_keys=True) canonicalizes the order downstream
        return {str(key): _canonical(val) for key, val in value.items()}
    return value


__all__ = [
    "TopologySpec",
    "DelaySpec",
    "AdversarySpec",
    "BroadcastSpec",
    "WorkloadSpec",
    "ScenarioSpec",
    "BACKEND_NAMES",
]
