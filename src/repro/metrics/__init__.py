"""Measurement of latency, network consumption and state size.

The paper's evaluation reports two primary metrics per broadcast:

* **latency** — the amount of (simulated) time needed for *all* correct
  processes to deliver the broadcast payload (Sec. 7.1);
* **network consumption** — the total number of bytes put on the links,
  computed from the per-field sizes of Table 3.

:class:`MetricsCollector` records both, plus message counts by type and
per-process state-size proxies used by the Sec. 7.3 reproduction.
:mod:`repro.metrics.report` provides the aggregation helpers (relative
variations, box-plot statistics) used by the Table 1 and Fig. 7–10
benchmarks.
"""

from repro.core.sizes import FieldSizes, PAPER_FIELD_SIZES
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.report import (
    BoxPlotStats,
    boxplot_stats,
    relative_variation_percent,
    summarize_variations,
)

__all__ = [
    "FieldSizes",
    "PAPER_FIELD_SIZES",
    "MetricsCollector",
    "RunMetrics",
    "BoxPlotStats",
    "boxplot_stats",
    "relative_variation_percent",
    "summarize_variations",
]
