"""Aggregation helpers for the evaluation benchmarks.

Table 1 and Figs. 7–10 of the paper report, for every modification, the
*relative variation* (in percent) of latency and network consumption with
respect to a reference configuration, summarized as box plots (95%
interval, quartiles and median).  This module implements those
aggregations on lists of per-run measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def relative_variation_percent(
    value: Optional[float], reference: Optional[float]
) -> Optional[float]:
    """Relative variation ``(value - reference) / reference`` in percent.

    A negative value means ``value`` improves on (is lower than) the
    reference, matching the sign convention of Table 1.  Either input may
    be ``None`` — a missing measurement, e.g. a latency mean over a run
    that delivered nothing — in which case the variation is ``None`` too
    rather than a ``TypeError``.
    """
    if value is None or reference is None:
        return None
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return 100.0 * (value - reference) / reference


@dataclass(frozen=True)
class BoxPlotStats:
    """The five summary statistics reported by the paper's box plots."""

    low: float  # 2.5th percentile (lower bound of the 95% interval)
    q1: float
    median: float
    q3: float
    high: float  # 97.5th percentile
    count: int

    def as_row(self) -> Tuple[float, float, float, float, float]:
        """The statistics as the 5-tuple printed in Figs. 7–10."""
        return (self.low, self.q1, self.median, self.q3, self.high)

    def format(self, precision: int = 1) -> str:
        """Render like the bracketed annotations of Figs. 7–10."""
        values = ", ".join(f"{v:.{precision}f}" for v in self.as_row())
        return f"[{values}]"


def boxplot_stats(values: Sequence[float]) -> BoxPlotStats:
    """Compute the box-plot summary used by Figs. 7–10."""
    if not values:
        raise ValueError("cannot summarize an empty list of values")
    array = np.asarray(list(values), dtype=float)
    low, q1, median, q3, high = np.percentile(array, [2.5, 25.0, 50.0, 75.0, 97.5])
    return BoxPlotStats(
        low=float(low),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        high=float(high),
        count=len(array),
    )


def variation_range(values: Sequence[float]) -> Tuple[float, float]:
    """The ``[min, max]`` variation interval reported in Table 1."""
    if not values:
        raise ValueError("cannot summarize an empty list of values")
    return (float(min(values)), float(max(values)))


def summarize_variations(
    measured: Mapping[str, Sequence[float]],
    reference: Mapping[str, Sequence[float]],
) -> Dict[str, Tuple[float, float]]:
    """Per-key ``[min, max]`` relative variations of paired measurements.

    ``measured`` and ``reference`` map an experiment key (for instance a
    ``(N, k, f)`` tuple rendered as a string) to lists of values; each
    measured value is compared with the reference value of the same key
    and position.
    """
    variations: Dict[str, List[float]] = {}
    for key, values in measured.items():
        refs = reference.get(key)
        if not refs:
            continue
        pairs = zip(values, refs)
        computed = (
            relative_variation_percent(value, ref) for value, ref in pairs if ref
        )
        variations[key] = [v for v in computed if v is not None]
    return {key: variation_range(vals) for key, vals in variations.items() if vals}


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (convenience wrapper for benchmark scripts)."""
    data = list(values)
    if not data:
        raise ValueError("cannot average an empty list")
    return float(np.mean(data))


def median(values: Iterable[float]) -> float:
    """Median (convenience wrapper for benchmark scripts)."""
    data = list(values)
    if not data:
        raise ValueError("cannot take the median of an empty list")
    return float(np.median(data))


__all__ = [
    "relative_variation_percent",
    "BoxPlotStats",
    "boxplot_stats",
    "variation_range",
    "summarize_variations",
    "mean",
    "median",
]
