"""Per-run metric collection.

A :class:`MetricsCollector` is attached to a network runtime and records
every message put on a link and every application-level delivery.  At the
end of a run it is frozen into a :class:`RunMetrics` snapshot that the
experiment runner and the benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core.messages import MessageType
from repro.core.sizes import FieldSizes, PAPER_FIELD_SIZES

BroadcastKey = Tuple[int, int]


@dataclass(frozen=True)
class RunMetrics:
    """Immutable snapshot of the metrics of one protocol run."""

    #: Total number of messages put on links by all processes.
    message_count: int
    #: Total number of bytes put on links (Table 3 accounting).
    total_bytes: int
    #: Message counts broken down by message type name.
    messages_by_type: Mapping[str, int]
    #: Byte counts broken down by message type name.
    bytes_by_type: Mapping[str, int]
    #: Messages sent by each process.
    messages_by_process: Mapping[int, int]
    #: Bytes sent by each process.
    bytes_by_process: Mapping[int, int]
    #: Delivery time of each (process, broadcast) pair.
    delivery_times: Mapping[Tuple[int, BroadcastKey], float]
    #: Payload delivered by each (process, broadcast) pair.
    delivered_payloads: Mapping[Tuple[int, BroadcastKey], bytes]
    #: Simulated (or wall-clock) time at which the run ended.
    end_time: float
    #: Per-process state-size proxies collected at the end of the run.
    state_sizes: Mapping[int, int]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def deliveries_for(self, key: BroadcastKey) -> Dict[int, bytes]:
        """Map process id → delivered payload for one broadcast."""
        return {
            pid: payload
            for (pid, bkey), payload in self.delivered_payloads.items()
            if bkey == key
        }

    def delivery_latency(
        self, key: BroadcastKey, processes: Iterable[int], start_time: float = 0.0
    ) -> Optional[float]:
        """Latency until every process in ``processes`` delivered ``key``.

        Returns ``None`` when at least one of the processes did not
        deliver, mirroring the paper's definition of latency as the time
        for *all correct processes* to deliver.  An empty ``processes``
        (every process Byzantine or crashed) also returns ``None``: the
        measurement is undefined, not a 0 ms delivery.
        """
        latest = start_time
        observed_any = False
        for pid in processes:
            time = self.delivery_times.get((pid, key))
            if time is None:
                return None
            observed_any = True
            latest = max(latest, time)
        if not observed_any:
            return None
        return latest - start_time

    def delivering_processes(self, key: BroadcastKey) -> Tuple[int, ...]:
        """Processes that delivered ``key``, sorted."""
        return tuple(
            sorted(pid for (pid, bkey) in self.delivery_times if bkey == key)
        )

    @property
    def peak_state_size(self) -> int:
        """Largest per-process state-size proxy observed."""
        return max(self.state_sizes.values(), default=0)

    @property
    def total_state_size(self) -> int:
        """Sum of the per-process state-size proxies."""
        return sum(self.state_sizes.values())


class MetricsCollector:
    """Mutable collector attached to a runtime during a run."""

    __slots__ = (
        "sizes",
        "_type_counts",
        "_process_counts",
        "delivery_times",
        "delivered_payloads",
        "state_sizes",
        "end_time",
        "_memo_message",
        "_memo_size",
        "_memo_tcell",
        "_memo_sender",
        "_memo_pcell",
    )

    def __init__(self, sizes: FieldSizes = PAPER_FIELD_SIZES) -> None:
        self.sizes = sizes
        # Per-type and per-process [messages, bytes] cells: one dict
        # lookup updates both counters of a breakdown, halving the hashed
        # operations on the per-send path.  The public per-metric mappings
        # (and the grand totals) are materialized on demand below.
        self._type_counts: Dict[str, list] = {}
        self._process_counts: Dict[int, list] = {}
        self.delivery_times: Dict[Tuple[int, BroadcastKey], float] = {}
        self.delivered_payloads: Dict[Tuple[int, BroadcastKey], bytes] = {}
        self.state_sizes: Dict[int, int] = {}
        self.end_time = 0.0
        # One-slot memo over the last message object (and sender) seen by
        # record_send.  Fan-out sends the same (interned) message instance
        # to many neighbors back to back, so its wire size, type name and
        # counter cells are resolved once per burst instead of once per
        # link.  Keyed by identity of a held reference — never by a bare
        # id() — so a recycled address cannot alias a dead object.
        self._memo_message: object = None
        self._memo_size = 0
        self._memo_tcell: list = [0, 0]
        self._memo_sender: object = None
        self._memo_pcell: list = [0, 0]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_send(self, time: float, sender: int, dest: int, message) -> int:
        """Record a message put on the link ``sender → dest``.

        Returns the wire size charged for the message so the runtime can
        use it for bandwidth-dependent delays if needed.
        """
        if message is self._memo_message:
            size = self._memo_size
            cell = self._memo_tcell
        else:
            size = message.wire_size(self.sizes) if hasattr(message, "wire_size") else 0
            type_name = _message_type_name(message)
            cell = self._type_counts.get(type_name)
            if cell is None:
                cell = self._type_counts[type_name] = [0, 0]
            self._memo_message = message
            self._memo_size = size
            self._memo_tcell = cell
        cell[0] += 1
        cell[1] += size
        if sender == self._memo_sender:
            cell = self._memo_pcell
        else:
            cell = self._process_counts.get(sender)
            if cell is None:
                cell = self._process_counts[sender] = [0, 0]
            self._memo_sender = sender
            self._memo_pcell = cell
        cell[0] += 1
        cell[1] += size
        if time > self.end_time:
            self.end_time = time
        return size

    def record_delivery(
        self, time: float, pid: int, source: int, bid: int, payload: bytes
    ) -> None:
        """Record an application-level (BRB or RC) delivery."""
        key = (pid, (source, bid))
        if key not in self.delivery_times:
            self.delivery_times[key] = time
            self.delivered_payloads[key] = payload
        self.end_time = max(self.end_time, time)

    def record_time(self, time: float) -> None:
        """Advance the recorded end-of-run time."""
        self.end_time = max(self.end_time, time)

    def record_state_size(self, pid: int, size: int) -> None:
        """Record a per-process state-size proxy (stored paths, tables, …)."""
        self.state_sizes[pid] = size

    # ------------------------------------------------------------------
    # Breakdown views
    # ------------------------------------------------------------------
    @property
    def message_count(self) -> int:
        """Total messages recorded (derived from the per-type cells)."""
        return sum(cell[0] for cell in self._type_counts.values())

    @property
    def total_bytes(self) -> int:
        """Total bytes recorded (derived from the per-type cells)."""
        return sum(cell[1] for cell in self._type_counts.values())

    @property
    def messages_by_type(self) -> Dict[str, int]:
        """Message counts by type name (materialized view)."""
        return {name: cell[0] for name, cell in self._type_counts.items()}

    @property
    def bytes_by_type(self) -> Dict[str, int]:
        """Byte counts by type name (materialized view)."""
        return {name: cell[1] for name, cell in self._type_counts.items()}

    @property
    def messages_by_process(self) -> Dict[int, int]:
        """Message counts by sending process (materialized view)."""
        return {pid: cell[0] for pid, cell in self._process_counts.items()}

    @property
    def bytes_by_process(self) -> Dict[int, int]:
        """Byte counts by sending process (materialized view)."""
        return {pid: cell[1] for pid, cell in self._process_counts.items()}

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> RunMetrics:
        """Freeze the collected values into a :class:`RunMetrics`."""
        return RunMetrics(
            message_count=self.message_count,
            total_bytes=self.total_bytes,
            messages_by_type=self.messages_by_type,
            bytes_by_type=self.bytes_by_type,
            messages_by_process=self.messages_by_process,
            bytes_by_process=self.bytes_by_process,
            delivery_times=dict(self.delivery_times),
            delivered_payloads=dict(self.delivered_payloads),
            end_time=self.end_time,
            state_sizes=dict(self.state_sizes),
        )


#: ``MessageType`` member -> display name, precomputed: ``Enum.name`` is
#: a ``DynamicClassAttribute`` descriptor call, too slow for a per-send path.
_MTYPE_NAMES = {member: member.name for member in MessageType}
_DOLEV_NAMES = {member: f"DOLEV[{member.name}]" for member in MessageType}


def message_type_name(message) -> str:
    """Canonical display name of a message's type.

    This is the name the metric breakdowns key on and the one adaptive
    fault filters (:class:`repro.scenarios.faults.ObservationFilter`)
    match against — e.g. ``"ECHO"`` for a Bracha echo, ``"DOLEV[ECHO]"``
    for the same message inside a Dolev envelope — so both runtimes
    describe the same message identically.
    """
    mtype = getattr(message, "mtype", None)
    if type(mtype) is MessageType:
        return _MTYPE_NAMES[mtype]
    content = getattr(message, "content", None)
    if content is not None:
        inner = getattr(content, "mtype", None)
        if type(inner) is MessageType:
            return _DOLEV_NAMES[inner]
        return "DOLEV[RAW]"
    return type(message).__name__


#: Backwards-compatible alias (the collector used this privately first).
_message_type_name = message_type_name


__all__ = ["MetricsCollector", "RunMetrics", "BroadcastKey", "message_type_name"]
