"""``repro-lint`` — the determinism-contract linter's command line.

Exit protocol (stable; the ``determinism-lint`` CI job relies on it):

* ``0`` — every scanned file is clean (suppressed findings allowed);
* ``1`` — at least one active error-severity finding;
* ``2`` — usage, configuration or internal error.

``--format json`` emits the versioned report document (see
:mod:`repro.lint.report`); ``--list-rules`` prints the rule catalog
with each rule's one-line rationale.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.config import ConfigError, load_config
from repro.lint.engine import lint_paths
from repro.lint.report import render_human, render_json
from repro.lint.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis of the repository's determinism contract: "
            "sans-io protocol purity, stable iteration order, seeded "
            "randomness, hash-suppression registration, __slots__ "
            "coverage and schema-constant consistency."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [lint].paths from the config)",
    )
    parser.add_argument(
        "--config",
        default="lint.toml",
        help="path to the lint configuration (default: ./lint.toml)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report to FILE (stdout always gets it)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only these rule ids (must be enabled in the config)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule catalog and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            print(f"{rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    only_rules = None
    if args.rules:
        only_rules = [part.strip() for part in args.rules.split(",") if part.strip()]

    try:
        config = load_config(args.config)
        report = lint_paths(config, paths=args.paths or None, only_rules=only_rules)
    except ConfigError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    rendered = render_json(report) if args.format == "json" else render_human(report)
    sys.stdout.write(rendered)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(rendered)
        except OSError as exc:
            print(f"repro-lint: error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
