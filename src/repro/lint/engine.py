"""The rule engine: file discovery, parsing, scoping and suppression.

The engine walks the configured scan roots in sorted order (the linter
obeys its own determinism contract: two runs over one tree produce
byte-identical reports), parses each file once, runs every enabled rule
whose include/exclude globs match the file, and applies the inline
pragma suppressions.  A file that does not parse yields a single
``LNT000`` finding instead of crashing the run — a broken file must
fail the gate, not the linter.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.lint.config import ConfigError, LintConfig
from repro.lint.pragmas import pragma_for, scan_pragmas
from repro.lint.report import LintReport
from repro.lint.rules import RULES, Finding, ModuleUnderLint

#: Pseudo-rule id for files the parser rejects.
PARSE_ERROR_RULE = "LNT000"


def _iter_python_files(root: Path, scan_paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under the scan roots, sorted, deduplicated."""
    seen = set()
    ordered: List[Path] = []
    for scan in scan_paths:
        base = (root / scan).resolve() if not Path(scan).is_absolute() else Path(scan)
        if base.is_file():
            candidates: Iterable[Path] = [base] if base.suffix == ".py" else []
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            raise ConfigError(f"scan path does not exist: {base}")
        for path in candidates:
            if "__pycache__" in path.parts:
                continue
            if path not in seen:
                seen.add(path)
                ordered.append(path)
    return ordered


class LintEngine:
    """Runs the configured rules over a file set."""

    def __init__(self, config: LintConfig, only_rules: Optional[Sequence[str]] = None):
        self.config = config
        if only_rules:
            unknown = sorted(set(only_rules) - set(config.rules))
            if unknown:
                raise ConfigError(
                    f"--rules names {', '.join(unknown)}, not enabled in the "
                    f"config (enabled: {', '.join(sorted(config.rules))})"
                )
            self.active_rules = tuple(r for r in sorted(config.rules) if r in only_rules)
        else:
            self.active_rules = tuple(sorted(config.rules))

    def _relative(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.config.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def lint_file(self, path: Path) -> List[Finding]:
        rel = self._relative(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            return [
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=rel,
                    line=line,
                    column=0,
                    message=f"file does not parse: {exc}",
                )
            ]
        module = ModuleUnderLint(
            rel=rel, source=source, tree=tree, pragmas=scan_pragmas(source)
        )
        findings: List[Finding] = []
        for rule_id in self.active_rules:
            rule_cfg = self.config.rules[rule_id]
            if not rule_cfg.filter.matches(rel):
                continue
            rule = RULES[rule_id]
            for finding in rule.check(module, rule_cfg.options):
                finding = finding.with_severity(rule_cfg.severity)
                pragma = pragma_for(module.pragmas, finding.line, rule_id)
                if pragma is not None:
                    finding = Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        column=finding.column,
                        message=finding.message,
                        severity=finding.severity,
                        suppressed=True,
                        justification=pragma.justification,
                    )
                findings.append(finding)
        return findings

    def run(self, paths: Optional[Sequence[Union[str, Path]]] = None) -> LintReport:
        """Lint ``paths`` (default: the config's scan roots)."""
        scan = [str(p) for p in paths] if paths else list(self.config.paths)
        files = _iter_python_files(self.config.root, scan)
        findings: List[Finding] = []
        for path in files:
            findings.extend(self.lint_file(path))
        findings.sort(key=Finding.sort_key)
        return LintReport(
            findings=tuple(findings),
            files_scanned=len(files),
            rules=self.active_rules,
        )


def lint_paths(
    config: LintConfig,
    paths: Optional[Sequence[Union[str, Path]]] = None,
    only_rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """One-call façade used by the CLI and the test suite."""
    return LintEngine(config, only_rules=only_rules).run(paths)


__all__ = ["LintEngine", "ModuleUnderLint", "PARSE_ERROR_RULE", "lint_paths"]
