"""``python -m repro.lint`` — uninstalled-checkout entry point."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
