"""Linter configuration: ``lint.toml`` loading and rule scoping.

The committed ``lint.toml`` at the repository root maps every rule to
the package globs it protects, carries per-rule severity overrides and
the rule-specific options (the HSH001 grandfathered-field baseline, the
SLT001 hot-path class registry, the WIR001 constant pins).

Parsing uses :mod:`tomllib` where available (Python 3.11+); on 3.10 a
minimal built-in parser covering the subset ``lint.toml`` actually uses
(tables, quoted/bare keys, strings, ints, floats, booleans and possibly
multi-line arrays) keeps the linter dependency-free.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on 3.10 CI lanes
    _toml = None


class ConfigError(Exception):
    """Raised when ``lint.toml`` is missing, unparsable or inconsistent."""


# ----------------------------------------------------------------------
# Minimal TOML subset parser (3.10 fallback)
# ----------------------------------------------------------------------

#: One key: a quoted string, or a bare key (no dots — dots separate
#: table-header segments).
_SEGMENT_RE = re.compile(r'"((?:[^"\\]|\\.)*)"|([A-Za-z0-9_-]+)')
#: A full ``key =`` left-hand side; bare keys here may carry the
#: path-like characters the config uses inside quoted keys only.
_KEY_RE = re.compile(r'"((?:[^"\\]|\\.)*)"|([A-Za-z0-9_-]+)')


def _split_table_header(header: str) -> List[str]:
    """Split ``a.b."c.d"`` into path segments, honouring quoted keys."""
    segments: List[str] = []
    index = 0
    while index < len(header):
        if header[index] == ".":
            index += 1
            continue
        match = _SEGMENT_RE.match(header, index)
        if match is None:
            raise ConfigError(f"unparsable table header segment at {header[index:]!r}")
        segments.append(match.group(1) if match.group(1) is not None else match.group(2))
        index = match.end()
    if not segments:
        raise ConfigError(f"empty table header in {header!r}")
    return segments


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a double-quoted string."""
    in_string = False
    for index, char in enumerate(line):
        if char == '"' and (index == 0 or line[index - 1] != "\\"):
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ConfigError(f"unsupported TOML value {text!r} (minimal parser)") from None


def _split_array_items(body: str) -> List[str]:
    """Split an array body on top-level commas (strings may hold commas)."""
    items: List[str] = []
    current: List[str] = []
    in_string = False
    for index, char in enumerate(body):
        if char == '"' and (index == 0 or body[index - 1] != "\\"):
            in_string = not in_string
            current.append(char)
        elif char == "," and not in_string:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item for item in (piece.strip() for piece in items) if item]


def parse_minimal_toml(text: str) -> Dict[str, Any]:
    """Parse the TOML subset ``lint.toml`` uses into nested dicts.

    Supported: ``[dotted.table."quoted segment"]`` headers, bare and
    quoted keys, string/int/float/bool scalars and (possibly multi-line)
    arrays of scalars.  Anything fancier raises :class:`ConfigError` —
    the committed config is regression-tested against :mod:`tomllib`, so
    the two parsers cannot drift silently.
    """
    root: Dict[str, Any] = {}
    table = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index]).strip()
        index += 1
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for segment in _split_table_header(line[1:-1]):
                table = table.setdefault(segment, {})
                if not isinstance(table, dict):
                    raise ConfigError(f"table {segment!r} collides with a value")
            continue
        if "=" not in line:
            raise ConfigError(f"unparsable line {line!r} (minimal parser)")
        key_text, _, value_text = line.partition("=")
        match = _KEY_RE.fullmatch(key_text.strip())
        if match is None:
            raise ConfigError(f"unparsable key {key_text.strip()!r}")
        key = match.group(1) if match.group(1) is not None else match.group(2)
        value_text = value_text.strip()
        if value_text.startswith("["):
            # Accumulate lines until the brackets balance outside strings.
            while True:
                depth = 0
                in_string = False
                for pos, char in enumerate(value_text):
                    if char == '"' and (pos == 0 or value_text[pos - 1] != "\\"):
                        in_string = not in_string
                    elif not in_string and char == "[":
                        depth += 1
                    elif not in_string and char == "]":
                        depth -= 1
                if depth == 0:
                    break
                if index >= len(lines):
                    raise ConfigError(f"unterminated array for key {key!r}")
                value_text += _strip_comment(lines[index]).strip()
                index += 1
            body = value_text.strip()[1:-1]
            table[key] = [_parse_scalar(item) for item in _split_array_items(body)]
        else:
            table[key] = _parse_scalar(value_text)
    return root


def _load_toml_text(text: str) -> Dict[str, Any]:
    if _toml is not None:
        return _toml.loads(text)
    return parse_minimal_toml(text)


# ----------------------------------------------------------------------
# Glob matching
# ----------------------------------------------------------------------


def glob_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a ``**``-aware glob over '/'-separated relative paths."""
    out: List[str] = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if char == "*":
            if pattern[index : index + 2] == "**":
                out.append(".*")
                index += 2
                # Collapse "**/" so "a/**/b.py" also matches "a/b.py".
                if pattern[index : index + 1] == "/":
                    out[-1] = "(?:.*/)?"
                    index += 1
            else:
                out.append("[^/]*")
                index += 1
        elif char == "?":
            out.append("[^/]")
            index += 1
        else:
            out.append(re.escape(char))
            index += 1
    return re.compile("".join(out) + r"\Z")


@dataclass(frozen=True)
class PathFilter:
    """Include/exclude glob pair over repo-relative posix paths."""

    include: Tuple[str, ...] = ("**",)
    exclude: Tuple[str, ...] = ()

    def matches(self, rel_path: str) -> bool:
        if not any(glob_to_regex(pat).match(rel_path) for pat in self.include):
            return False
        return not any(glob_to_regex(pat).match(rel_path) for pat in self.exclude)


# ----------------------------------------------------------------------
# Config model
# ----------------------------------------------------------------------

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class RuleConfig:
    """One enabled rule: scope, severity and rule-specific options."""

    rule_id: str
    severity: str = "error"
    filter: PathFilter = field(default_factory=PathFilter)
    options: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class LintConfig:
    """The parsed ``lint.toml``: scan roots plus the enabled rules."""

    root: Path
    paths: Tuple[str, ...] = ("src",)
    rules: Mapping[str, RuleConfig] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any], root: Union[str, Path]) -> "LintConfig":
        from repro.lint.rules import RULES  # late import: rules import config types

        lint_section = data.get("lint", {})
        if not isinstance(lint_section, Mapping):
            raise ConfigError("[lint] must be a table")
        paths = tuple(lint_section.get("paths", ("src",)))
        if not paths:
            raise ConfigError("[lint].paths must name at least one scan root")
        rules_section = data.get("rules", {})
        if not isinstance(rules_section, Mapping) or not rules_section:
            raise ConfigError("[rules.<ID>] tables must enable at least one rule")
        rules: Dict[str, RuleConfig] = {}
        for rule_id, body in rules_section.items():
            if rule_id not in RULES:
                raise ConfigError(
                    f"unknown rule {rule_id!r} in config; registered rules: "
                    f"{', '.join(sorted(RULES))}"
                )
            if not isinstance(body, Mapping):
                raise ConfigError(f"[rules.{rule_id}] must be a table")
            severity = body.get("severity", RULES[rule_id].default_severity)
            if severity not in SEVERITIES:
                raise ConfigError(
                    f"[rules.{rule_id}].severity must be one of {SEVERITIES}, "
                    f"got {severity!r}"
                )
            options = {
                key: value
                for key, value in body.items()
                if key not in ("severity", "include", "exclude")
            }
            rules[rule_id] = RuleConfig(
                rule_id=rule_id,
                severity=severity,
                filter=PathFilter(
                    include=tuple(body.get("include", ("**",))),
                    exclude=tuple(body.get("exclude", ())),
                ),
                options=options,
            )
        return cls(root=Path(root), paths=paths, rules=rules)


def load_config(path: Union[str, Path]) -> LintConfig:
    """Load ``lint.toml``; scan roots resolve relative to its directory."""
    path = Path(path)
    if not path.is_file():
        raise ConfigError(f"config file not found: {path}")
    try:
        data = _load_toml_text(path.read_text(encoding="utf-8"))
    except ConfigError:
        raise
    except Exception as exc:
        raise ConfigError(f"cannot parse {path}: {exc}") from exc
    return LintConfig.from_mapping(data, root=path.resolve().parent)


__all__ = [
    "ConfigError",
    "LintConfig",
    "RuleConfig",
    "PathFilter",
    "SEVERITIES",
    "glob_to_regex",
    "load_config",
    "parse_minimal_toml",
]
