"""``repro.lint`` — the determinism-contract linter.

Every guarantee this reproduction makes — byte-identical golden traces,
stable scenario hashes, cross-backend conformance, the bench ratchet —
rests on a determinism contract that ordinary tests only enforce after
the fact: protocol code must be sans-io, ordering must never depend on
``dict``/``set`` iteration order or ``id()``, randomness must flow from
seeded RNGs, and hash-affecting spec fields must be registered in
``_HASH_SUPPRESS_DEFAULTS``.  This package turns that contract into
machine-checked static-analysis rules (stdlib ``ast``; no third-party
parser) that fail the PR instead of the nightly fuzz farm.

Entry points: the ``repro-lint`` console script and
``python -m repro.lint``; the committed ``lint.toml`` at the repo root
scopes each rule to the packages it protects.  See the rule catalog in
:mod:`repro.lint.rules` and the README "Static analysis" section.
"""

from repro.lint.config import LintConfig, RuleConfig, load_config
from repro.lint.engine import LintEngine, ModuleUnderLint, lint_paths
from repro.lint.report import REPORT_SCHEMA_VERSION, LintReport, render_human, render_json
from repro.lint.rules import RULES, Finding, Rule, all_rule_ids

__all__ = [
    "LintConfig",
    "RuleConfig",
    "load_config",
    "LintEngine",
    "ModuleUnderLint",
    "lint_paths",
    "LintReport",
    "REPORT_SCHEMA_VERSION",
    "render_human",
    "render_json",
    "RULES",
    "Rule",
    "Finding",
    "all_rule_ids",
]
