"""Report rendering: the human console format and the JSON artifact.

The JSON document is the CI contract — the ``determinism-lint`` job
uploads it as an artifact and fails on ``summary.active > 0`` — so its
layout is versioned like every other schema in this repository (see the
WIR001 pin in ``lint.toml``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.lint.rules import RULES, Finding

#: Bump when the JSON report layout changes; pinned by WIR001 itself.
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LintReport:
    """Outcome of one engine run."""

    findings: Tuple[Finding, ...]
    files_scanned: int
    rules: Tuple[str, ...]

    @property
    def active(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if not f.suppressed)

    @property
    def suppressed(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.suppressed)

    @property
    def exit_code(self) -> int:
        """0 when no active error-severity finding remains, else 1."""
        return 1 if any(f.severity == "error" for f in self.active) else 0

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def render_json(report: LintReport) -> str:
    document = {
        "schema": REPORT_SCHEMA_VERSION,
        "tool": "repro-lint",
        "files_scanned": report.files_scanned,
        "rules": list(report.rules),
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "column": f.column,
                "message": f.message,
                "suppressed": f.suppressed,
                "justification": f.justification,
            }
            for f in report.findings
        ],
        "summary": {
            "active": len(report.active),
            "suppressed": len(report.suppressed),
            "by_rule": report.by_rule(),
        },
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


def render_human(report: LintReport) -> str:
    lines = []
    for finding in report.findings:
        suffix = ""
        if finding.suppressed:
            why = f" ({finding.justification})" if finding.justification else ""
            suffix = f"  [suppressed{why}]"
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column + 1}: "
            f"{finding.rule} {finding.severity}: {finding.message}{suffix}"
        )
    active = report.active
    lines.append(
        f"repro-lint: {report.files_scanned} files, "
        f"{len(report.rules)} rules, {len(active)} active finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    if active:
        for rule_id, count in report.by_rule().items():
            title = RULES[rule_id].title if rule_id in RULES else "parse error"
            lines.append(f"  {rule_id} x{count}: {title}")
    return "\n".join(lines) + "\n"


__all__ = ["LintReport", "REPORT_SCHEMA_VERSION", "render_human", "render_json"]
