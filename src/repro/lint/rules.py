"""The determinism-contract rule catalog.

Every rule is a small :mod:`ast` analysis registered in :data:`RULES`;
``lint.toml`` scopes each one to the packages it protects.  The catalog:

========  ==============================================================
DET001    No wall-clock or entropy sources (``time.time``,
          ``datetime.now``, ``os.urandom``, unseeded module-level
          ``random.*``, ``secrets``, ``uuid.uuid1/4``) outside the
          allowlisted runtime layer — nondeterministic inputs fork the
          two backends and break golden traces.
DET002    No ordering derived from unsorted ``dict``/``set`` iteration
          (``.keys()``/``.values()``/``.items()`` loops, set literals)
          or from ``id()``/``hash()`` in protocol, oracle and
          hash-computation modules.  Iteration feeding a commutative
          reducer (``sum``, ``min``, ``max``, ``any``, ``all``, ...) is
          order-free and exempt.
SIO001    Sans-io purity: protocol packages may not import ``asyncio``,
          ``socket``, ``threading``, ``time`` or ``selectors`` — the
          same protocol instance must run under both runtimes.
HSH001    Every defaulted dataclass field on a class bearing
          ``_HASH_SUPPRESS_DEFAULTS`` must be registered — either in
          that mapping (hash-suppressed while defaulted) or in the
          config's grandfathered baseline (hash-significant since before
          the mechanism existed).  Catches the "new spec field breaks
          every golden" footgun at review time.
SLT001    Registered hot-path classes must declare ``__slots__``
          (explicitly or via ``@dataclass(slots=True)``) covering every
          attribute their methods assign.
WIR001    Wire/cache/corpus schema constants are defined exactly once,
          at their registered site, with the config-pinned value; stray
          ``version=``/``"schema":`` integer literals elsewhere are
          flagged.  Version bumps must touch ``lint.toml`` too, making
          them deliberate.
========  ==============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint.config import ConfigError


@dataclass(frozen=True)
class Finding:
    """One rule violation (possibly pragma-suppressed) at a source line."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    severity: str = "error"
    suppressed: bool = False
    justification: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)

    def with_severity(self, severity: str) -> "Finding":
        return replace(self, severity=severity)


@dataclass
class ModuleUnderLint:
    """One parsed source file handed to the rules."""

    rel: str  # repo-relative posix path, the unit of config scoping
    source: str
    tree: ast.Module
    pragmas: Mapping[int, Any] = field(default_factory=dict)


class Rule:
    """Base class: subclasses set the id metadata and implement check()."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    default_severity: str = "error"

    def check(
        self, module: ModuleUnderLint, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleUnderLint, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} must set rule_id")
    if instance.rule_id in RULES:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    RULES[instance.rule_id] = instance
    return cls


def all_rule_ids() -> Tuple[str, ...]:
    return tuple(sorted(RULES))


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chain as ``("a", "b", "c")``, if rooted in a name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


# ----------------------------------------------------------------------
# DET001 — wall-clock and entropy sources
# ----------------------------------------------------------------------

_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "localtime",
        "gmtime",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_SEEDED_RANDOM_OK = frozenset({"Random", "SystemRandom"})
_UUID_FUNCS = frozenset({"uuid1", "uuid4"})


@register
class NoWallClockOrEntropy(Rule):
    rule_id = "DET001"
    title = "no wall-clock or entropy sources outside the runtime layer"
    rationale = (
        "Nondeterministic inputs (wall-clock reads, OS entropy, the "
        "unseeded module-level RNG) fork the simulation and asyncio "
        "backends and break golden traces; randomness must flow from a "
        "seeded random.Random and time from the scheduler's virtual clock."
    )

    def _call_violation(self, dotted: Tuple[str, ...]) -> Optional[str]:
        if len(dotted) == 2 and dotted[0] == "time" and dotted[1] in _TIME_FUNCS:
            return f"wall-clock read time.{dotted[1]}()"
        if dotted == ("os", "urandom"):
            return "OS entropy os.urandom()"
        if dotted[0] == "secrets":
            return f"OS entropy secrets.{'.'.join(dotted[1:])}()"
        if len(dotted) == 2 and dotted[0] == "uuid" and dotted[1] in _UUID_FUNCS:
            return f"nondeterministic uuid.{dotted[1]}()"
        if (
            len(dotted) == 2
            and dotted[0] == "random"
            and dotted[1] not in _SEEDED_RANDOM_OK
        ):
            return f"unseeded module-level RNG random.{dotted[1]}()"
        if dotted[-1] in _DATETIME_FUNCS and dotted[0] in ("datetime", "date"):
            return f"wall-clock read {'.'.join(dotted)}()"
        return None

    def check(
        self, module: ModuleUnderLint, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                what = self._call_violation(dotted)
                if what is not None:
                    yield self.finding(
                        module,
                        node,
                        f"{what}: determinism-sensitive code must take time "
                        "from the runtime and randomness from a seeded "
                        "random.Random (runtime-layer modules are allowlisted "
                        "in lint.toml)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                banned: Sequence[str] = ()
                if node.module == "time":
                    banned = [a.name for a in node.names if a.name in _TIME_FUNCS]
                elif node.module == "os":
                    banned = [a.name for a in node.names if a.name == "urandom"]
                elif node.module == "secrets":
                    banned = [a.name for a in node.names]
                elif node.module == "random":
                    banned = [
                        a.name
                        for a in node.names
                        if a.name not in _SEEDED_RANDOM_OK
                    ]
                elif node.module == "uuid":
                    banned = [a.name for a in node.names if a.name in _UUID_FUNCS]
                for name in banned:
                    yield self.finding(
                        module,
                        node,
                        f"from {node.module} import {name} aliases a "
                        "wall-clock/entropy source past the call-site check; "
                        "import the module and keep such reads in the "
                        "runtime layer",
                    )


# ----------------------------------------------------------------------
# DET002 — unsorted dict/set iteration, id()/hash() ordering
# ----------------------------------------------------------------------

_DICT_VIEWS = frozenset({"keys", "values", "items"})
#: Builtins whose result does not depend on argument order — a dict/set
#: iteration feeding one of these directly is order-free by construction.
_ORDER_FREE_REDUCERS = frozenset(
    {"sum", "min", "max", "all", "any", "len", "set", "frozenset", "sorted", "Counter"}
)
_SEQUENCE_BUILDERS = frozenset({"list", "tuple"})


@register
class NoUnsortedIteration(Rule):
    rule_id = "DET002"
    title = "no ordering from unsorted dict/set iteration or id()/hash()"
    rationale = (
        "Protocol, oracle and hash-computation code must never derive an "
        "ordering from dict/set iteration order or from per-process values "
        "like id() and salted hash(); one unsorted loop silently forks the "
        "two backends.  Wrap the iterable in sorted(...) or feed it to a "
        "commutative reducer."
    )

    def _iter_violation(self, it: ast.AST) -> Optional[str]:
        """Why iterating ``it`` is order-sensitive, or None if it is fine."""
        if isinstance(it, ast.Call):
            func = it.func
            if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS:
                return (
                    f"iteration over unsorted .{func.attr}() — wrap in "
                    "sorted(...) or reduce commutatively"
                )
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return "iteration over an unordered set(...) — wrap in sorted(...)"
        if isinstance(it, ast.Set):
            return "iteration over a set literal — use a tuple or sorted(...)"
        if isinstance(it, ast.SetComp):
            return "iteration over a set comprehension — wrap in sorted(...)"
        return None

    def check(
        self, module: ModuleUnderLint, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        # Comprehensions whose iteration order provably cannot reach the
        # result: the sole argument of a commutative reducer call.
        order_free: Set[ast.AST] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREE_REDUCERS
                and len(node.args) >= 1
                and isinstance(node.args[0], (ast.GeneratorExp, ast.ListComp, ast.SetComp))
            ):
                order_free.add(node.args[0])

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                why = self._iter_violation(node.iter)
                if why is not None:
                    yield self.finding(module, node.iter, why)
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
                if node in order_free:
                    continue
                for comp in node.generators:
                    why = self._iter_violation(comp.iter)
                    if why is not None:
                        yield self.finding(module, comp.iter, why)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("id", "hash") and node.args:
                    yield self.finding(
                        module,
                        node,
                        f"builtin {node.func.id}() is interpreter/process-"
                        "dependent and must never order or key protocol "
                        "state; use an explicit stable key",
                    )
                elif (
                    node.func.id in _SEQUENCE_BUILDERS
                    and len(node.args) == 1
                    and self._iter_violation(node.args[0]) is not None
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}(...) materializes an unsorted "
                        "dict/set iteration into an ordered sequence; "
                        "wrap the iterable in sorted(...)",
                    )


# ----------------------------------------------------------------------
# SIO001 — sans-io purity of protocol packages
# ----------------------------------------------------------------------

_IO_MODULES = frozenset({"asyncio", "socket", "threading", "time", "selectors"})


@register
class SansIoPurity(Rule):
    rule_id = "SIO001"
    title = "protocol packages stay sans-io"
    rationale = (
        "Protocol logic runs unchanged under the discrete-event simulator "
        "and the asyncio runtime; importing an event loop, sockets, threads "
        "or the wall clock couples it to one runtime and breaks the "
        "cross-backend conformance contract."
    )

    def check(
        self, module: ModuleUnderLint, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        banned = frozenset(options.get("modules", _IO_MODULES))
        for node in ast.walk(module.tree):
            roots: List[str] = []
            if isinstance(node, ast.Import):
                roots = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                roots = [node.module.split(".")[0]]
            for root in roots:
                if root in banned:
                    yield self.finding(
                        module,
                        node,
                        f"sans-io protocol package imports {root!r}; I/O, "
                        "threads and the wall clock belong to the hosting "
                        "runtime, not the protocol",
                    )


# ----------------------------------------------------------------------
# HSH001 — hash-suppression registration of defaulted spec fields
# ----------------------------------------------------------------------


def _suppress_mapping_keys(class_node: ast.ClassDef) -> Optional[Tuple[ast.stmt, Set[str]]]:
    """The ``_HASH_SUPPRESS_DEFAULTS`` assignment and its string keys."""
    for stmt in class_node.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "_HASH_SUPPRESS_DEFAULTS":
                keys: Set[str] = set()
                if isinstance(value, ast.Dict):
                    for key in value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            keys.add(key.value)
                return stmt, keys
    return None


def _is_classvar(annotation: ast.expr) -> bool:
    dotted = _dotted(annotation)
    if dotted is not None:
        return dotted[-1] == "ClassVar"
    if isinstance(annotation, ast.Subscript):
        return _is_classvar(annotation.value)
    return False


def _dataclass_fields(class_node: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign, bool]]:
    """``(name, node, has_default)`` for each annotated dataclass field."""
    fields: List[Tuple[str, ast.AnnAssign, bool]] = []
    for stmt in class_node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_") or _is_classvar(stmt.annotation):
            continue
        has_default = stmt.value is not None
        if has_default and isinstance(stmt.value, ast.Call):
            func_dotted = _dotted(stmt.value.func)
            if func_dotted is not None and func_dotted[-1] == "field":
                has_default = any(
                    kw.arg in ("default", "default_factory")
                    for kw in stmt.value.keywords
                )
        fields.append((name, stmt, has_default))
    return fields


@register
class HashSuppressRegistration(Rule):
    rule_id = "HSH001"
    title = "defaulted spec fields must be hash-registered"
    rationale = (
        "On a _HASH_SUPPRESS_DEFAULTS-bearing spec class, a new defaulted "
        "field that is not suppressed changes every scenario hash — and "
        "with them every golden file and cache slot.  New fields register "
        "their default in the mapping; pre-mechanism fields are "
        "grandfathered in lint.toml's known_fields baseline."
    )

    def check(
        self, module: ModuleUnderLint, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        known: Mapping[str, Sequence[str]] = options.get("known_fields", {})
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            scan = _suppress_mapping_keys(node)
            if scan is None:
                continue
            _, suppressed = scan
            grandfathered = set(known.get(node.name, ()))
            for name, stmt, has_default in _dataclass_fields(node):
                if not has_default:
                    continue
                if name in suppressed or name in grandfathered:
                    continue
                yield self.finding(
                    module,
                    stmt,
                    f"defaulted field {node.name}.{name} is neither in "
                    "_HASH_SUPPRESS_DEFAULTS nor grandfathered in "
                    "lint.toml [rules.HSH001.known_fields]: an unregistered "
                    "default silently changes every scenario hash, golden "
                    "file and cache slot",
                )
            # Suppression keys must name real fields, or the mapping rots.
            field_names = {name for name, _, _ in _dataclass_fields(node)}
            for key in sorted(suppressed - field_names):
                yield self.finding(
                    module,
                    scan[0],
                    f"_HASH_SUPPRESS_DEFAULTS on {node.name} names "
                    f"{key!r}, which is not a field of the class",
                )


# ----------------------------------------------------------------------
# SLT001 — __slots__ coverage of registered hot-path classes
# ----------------------------------------------------------------------


def _declared_slots(class_node: ast.ClassDef) -> Optional[Set[str]]:
    """Slot names the class declares, or None when it declares none."""
    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    names: Set[str] = set()
                    value = stmt.value
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        elements: Sequence[ast.expr] = value.elts
                    else:
                        elements = [value]
                    for element in elements:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.add(element.value)
                    return names
    for decorator in class_node.decorator_list:
        if isinstance(decorator, ast.Call):
            dotted = _dotted(decorator.func)
            if dotted is not None and dotted[-1] == "dataclass":
                for kw in decorator.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return {name for name, _, _ in _dataclass_fields(class_node)}
    return None


def _self_assigned_attrs(class_node: ast.ClassDef) -> Dict[str, ast.AST]:
    """Attribute names stored on ``self`` anywhere in the class body."""
    assigned: Dict[str, ast.AST] = {}
    for node in ast.walk(class_node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Store)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            assigned.setdefault(node.attr, node)
    return assigned


@register
class SlotsCoverage(Rule):
    rule_id = "SLT001"
    title = "hot-path classes declare covering __slots__"
    rationale = (
        "The bench ratchet's ~5x hot-path win leans on __slots__; a class "
        "re-gaining a __dict__ (or assigning an attribute outside its "
        "slots) silently regresses memory and attribute-access time on "
        "the per-event path."
    )

    def check(
        self, module: ModuleUnderLint, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        classes: Mapping[str, Sequence[str]] = options.get("classes", {})
        registered: Dict[str, Set[str]] = {}
        for key, inherited in classes.items():
            path, sep, class_name = key.partition("::")
            if not sep:
                raise ConfigError(
                    f"[rules.SLT001.classes] key {key!r} must look like "
                    "'path/to/module.py::ClassName'"
                )
            if path == module.rel:
                registered[class_name] = set(inherited)
        if not registered:
            return
        seen: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in registered:
                continue
            seen.add(node.name)
            declared = _declared_slots(node)
            if declared is None:
                yield self.finding(
                    module,
                    node,
                    f"hot-path class {node.name} is registered in "
                    "[rules.SLT001.classes] but declares no __slots__ "
                    "(explicitly or via @dataclass(slots=True))",
                )
                continue
            allowed = declared | registered[node.name]
            assigned = _self_assigned_attrs(node)
            for attr in sorted(set(assigned) - allowed):
                yield self.finding(
                    module,
                    assigned[attr],
                    f"{node.name} assigns self.{attr} but its __slots__ "
                    "(plus the inherited slots registered in lint.toml) "
                    "do not declare it",
                )
        for class_name in sorted(set(registered) - seen):
            yield Finding(
                rule=self.rule_id,
                path=module.rel,
                line=1,
                column=0,
                message=(
                    f"[rules.SLT001.classes] registers {class_name} in this "
                    "module, but no such class exists — update lint.toml"
                ),
            )


# ----------------------------------------------------------------------
# WIR001 — schema/version constants referenced consistently
# ----------------------------------------------------------------------

_VERSIONISH_KEYS = frozenset({"version", "schema", "wire_version", "cache_version"})


@register
class WireConstantConsistency(Rule):
    rule_id = "WIR001"
    title = "wire/cache/corpus schema constants stay single-sourced"
    rationale = (
        "WIRE_VERSION, CACHE_VERSION and the corpus/report schema numbers "
        "gate compatibility decisions on both ends of a connection or "
        "file; a stray literal or a second definition site lets the two "
        "ends drift.  The lint.toml pin makes every bump a deliberate, "
        "reviewable change."
    )

    def check(
        self, module: ModuleUnderLint, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        constants: Mapping[str, Mapping[str, Any]] = options.get("constants", {})
        defined_here: Set[str] = set()
        for node in ast.walk(module.tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name) or target.id not in constants:
                    continue
                name = target.id
                spec = constants[name]
                if module.rel != spec.get("module"):
                    yield self.finding(
                        module,
                        node,
                        f"{name} is redefined outside its registered home "
                        f"{spec.get('module')!r}; import it instead",
                    )
                    continue
                defined_here.add(name)
                pinned = spec.get("value")
                if not (
                    isinstance(value, ast.Constant) and value.value == pinned
                ):
                    got = (
                        value.value
                        if isinstance(value, ast.Constant)
                        else ast.dump(value) if value is not None else None
                    )
                    yield self.finding(
                        module,
                        node,
                        f"{name} is {got!r} but lint.toml pins {pinned!r}: "
                        "bump the [rules.WIR001.constants] pin in the same "
                        "change, so version bumps stay deliberate",
                    )
            # Stray literal detection: {"schema": 3} / encode(version=3).
            if isinstance(node, ast.Dict):
                for key, val in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value.lower() in _VERSIONISH_KEYS
                        and isinstance(val, ast.Constant)
                        and isinstance(val.value, int)
                        and not isinstance(val.value, bool)
                    ):
                        yield self.finding(
                            module,
                            val,
                            f"dict key {key.value!r} carries the integer "
                            f"literal {val.value}; reference the registered "
                            "schema constant instead of a stray literal",
                        )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg is not None
                        and kw.arg.lower() in _VERSIONISH_KEYS
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, int)
                        and not isinstance(kw.value.value, bool)
                    ):
                        yield self.finding(
                            module,
                            kw.value,
                            f"keyword {kw.arg}={kw.value.value} passes a "
                            "stray schema literal; reference the registered "
                            "constant instead",
                        )
        for name, spec in constants.items():
            if module.rel == spec.get("module") and name not in defined_here:
                yield Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=1,
                    column=0,
                    message=(
                        f"lint.toml registers {name} as defined in this "
                        "module, but no literal assignment was found — "
                        "update the [rules.WIR001.constants] entry"
                    ),
                )


__all__ = [
    "Finding",
    "ModuleUnderLint",
    "Rule",
    "RULES",
    "register",
    "all_rule_ids",
]
