"""Inline suppression pragmas: ``# repro-lint: allow[RULE] -- why``.

A pragma names the rule ids it silences (comma-separated inside the
brackets, or ``*`` for all) and may carry a justification after ``--``;
suppressed findings stay in the JSON report with ``suppressed: true``
and the justification attached, so every waiver is auditable.

Placement: a trailing pragma covers findings reported on its own line;
a comment-only pragma line covers the next line as well (the idiom for
multi-line statements, where findings anchor to the statement's first
line).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[\s*([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)\s*\]"
    r"(?:\s*--\s*(?P<why>.*?))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    line: int
    rules: FrozenSet[str]
    justification: Optional[str] = None
    standalone: bool = False

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


def scan_pragmas(source: str) -> Dict[int, Pragma]:
    """Map source line numbers to the pragma that covers them.

    Comments are found with :mod:`tokenize`, so a pragma-looking string
    literal never suppresses anything.  Unreadable source (the engine
    reports syntax errors separately) yields no pragmas.
    """
    by_line: Dict[int, Pragma] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return by_line
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        line = token.start[0]
        standalone = token.line.strip().startswith("#")
        pragma = Pragma(
            line=line,
            rules=rules,
            justification=match.group("why") or None,
            standalone=standalone,
        )
        by_line[line] = pragma
        if standalone:
            # A comment-only pragma also covers the statement below it.
            by_line.setdefault(line + 1, pragma)
    return by_line


def pragma_for(pragmas: Dict[int, Pragma], line: int, rule_id: str) -> Optional[Pragma]:
    """The pragma suppressing ``rule_id`` at ``line``, if any."""
    pragma = pragmas.get(line)
    if pragma is not None and pragma.covers(rule_id):
        return pragma
    return None


__all__ = ["Pragma", "PRAGMA_RE", "scan_pragmas", "pragma_for"]
