"""Distributed sweep executor: scenario cells fanned out over worker hosts.

The :class:`DistributedSweepExecutor` is the multi-host sibling of
:class:`~repro.runner.parallel.SweepExecutor`.  A coordinator listens on
a TCP port; worker processes — on the same machine or on other hosts —
dial in, handshake, and then pull one
:class:`~repro.scenarios.spec.ScenarioSpec` cell at a time, execute it
on their local :class:`~repro.scenarios.backends.ScenarioBackend` via
:func:`~repro.scenarios.engine.run_scenario`, and stream the
:class:`~repro.scenarios.engine.ScenarioResult` back.  Messages use the
asyncio runtime's own length-prefixed framing
(:mod:`repro.network.asyncio_runtime.framing`) with the tagged envelopes
of :mod:`repro.runner.wire`.

**The cache directory is the coordination layer.**  Coordinator and
workers share one scenario-hash cache (:mod:`repro.runner.cache` — on
one machine a local path, across hosts a shared filesystem).  Every
computed result is persisted there, the coordinator re-checks the cache
at dispatch time, and a cell cached by *any* participant — including a
concurrent sweep on the same directory — is never dispatched again.

**Failure semantics.**  The sweep always terminates, with results equal
to the serial path for simulation cells:

* a worker that dies mid-cell (connection loss) or goes silent past the
  lease (no heartbeat for ``lease_timeout_s``) has its cell requeued for
  the next worker;
* a cell whose *execution* raises on a worker is requeued without
  dropping the connection — the worker stays in the fleet and keeps
  serving other cells;
* a cell requeued more than ``retry_budget`` times degrades to local
  execution on the coordinator (its thread pool), so a poisonous worker
  fleet cannot starve the sweep;
* with no live workers at all for ``worker_wait_s``, every pending cell
  degrades to local execution — a sweep with zero workers is just a slow
  serial run;
* a worker whose wire version does not match is rejected at handshake
  with an explicit REJECT reply.

Worker processes run :func:`run_worker`, exposed as the
``repro-sweep-worker`` console script (also reachable as
``python -m repro.runner.distributed``)::

    repro-sweep-worker --connect COORDINATOR_HOST:PORT --cache-dir /shared/cache
"""

from __future__ import annotations

import argparse
import asyncio
import os
import subprocess
import sys
import traceback
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional, Sequence, Set, Union

from repro.core.errors import ReproError, RuntimeAbort
from repro.network.asyncio_runtime.framing import (
    FrameError,
    read_frame,
    write_frame,
)
from repro.runner import wire
from repro.runner.cache import ResultCache, partition_cached
from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec


class _LeaseExpired(Exception):
    """A worker held a cell past its lease without a heartbeat."""


class _CellFailed(Exception):
    """A live worker reported that executing its cell raised."""


class _Cell:
    """One sweep cell's dispatch state."""

    __slots__ = ("index", "spec", "retries")

    def __init__(self, index: int, spec: ScenarioSpec) -> None:
        self.index = index
        self.spec = spec
        self.retries = 0


class DistributedSweepExecutor:
    """Coordinates one sweep over TCP-connected worker processes.

    Parameters
    ----------
    workers:
        Number of local worker *subprocesses* to spawn for the run (the
        zero-config path, mirroring ``SweepExecutor(workers=N)``).  With
        ``workers=0`` the executor only serves externally started
        workers — pass a fixed ``port`` and point ``repro-sweep-worker``
        processes at it.
    host / port:
        Listening address.  ``port=0`` binds an ephemeral port, published
        as :attr:`port` once :attr:`started` is set.
    cache_dir:
        Shared scenario-hash cache directory (the coordination layer);
        ``None`` disables caching — results then only travel the wire.
    retry_budget:
        How many times a cell may be *re*-dispatched after worker
        failures before it degrades to local execution.
    lease_timeout_s:
        Maximum silence (no heartbeat, no result) before an assigned
        cell's lease expires and the worker's connection is dropped.
    worker_wait_s:
        How long the coordinator waits with pending cells and zero live
        workers before executing the remainder locally.
    local_fallback:
        When ``False``, exhausting the retry budget (or the worker wait)
        raises :class:`~repro.core.errors.RuntimeAbort` instead of
        degrading to local execution.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[Union[str, Path]] = None,
        retry_budget: int = 2,
        lease_timeout_s: float = 60.0,
        worker_wait_s: float = 30.0,
        local_fallback: bool = True,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.workers = workers
        self.host = host
        self.requested_port = port
        self.cache = ResultCache(cache_dir)
        self.retry_budget = retry_budget
        self.lease_timeout_s = lease_timeout_s
        self.worker_wait_s = worker_wait_s
        self.local_fallback = local_fallback

        #: Set once the coordinator is listening; :attr:`port` is the
        #: actual bound port (ephemeral allocation resolves here).
        self.started = asyncio.Event()
        self.port: Optional[int] = None
        #: Worker subprocesses spawned for the current run (``workers > 0``).
        self.worker_processes: List[subprocess.Popen] = []

        # Per-run observability counters.
        self.cache_hits = 0
        self.dispatched_cells = 0
        self.completed_cells = 0
        self.requeued_cells = 0
        self.locally_executed = 0
        self.rejected_workers = 0
        self.active_workers = 0

        # Per-run coordination state (created in run_async).
        self._results: List[Optional[ScenarioResult]] = []
        self._pending: Deque[_Cell] = deque()
        self._outstanding = 0
        self._failure: Optional[BaseException] = None
        self._done: Optional[asyncio.Event] = None
        self._work_event: Optional[asyncio.Event] = None
        self._handler_tasks: Set[asyncio.Task] = set()
        self._local_tasks: Set[asyncio.Task] = set()
        self._store_futures: Set[asyncio.Future] = set()
        self._last_worker_seen = 0.0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, cells: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Run every cell and return results in cell order (blocking)."""
        return asyncio.run(self.run_async(cells))

    async def run_async(self, cells: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Async flavour of :meth:`run` for callers hosting the loop."""
        cells = list(cells)
        loop = asyncio.get_running_loop()
        self._reset()
        self._results, pending_indices, self.cache_hits = partition_cached(
            cells, self.cache
        )
        self._pending = deque(_Cell(index, cells[index]) for index in pending_indices)
        self._outstanding = len(pending_indices)
        self._done = asyncio.Event()
        self._work_event = asyncio.Event()
        self._last_worker_seen = loop.time()
        if self._outstanding == 0:
            self._done.set()

        server = await asyncio.start_server(
            self._serve_worker, host=self.host, port=self.requested_port
        )
        self.port = server.sockets[0].getsockname()[1]
        self.started.set()
        if self.workers > 0 and not self._done.is_set():
            self.worker_processes = launch_local_workers(
                self.workers, self.host, self.port, cache_dir=self.cache.cache_dir
            )
        watchdog = asyncio.ensure_future(self._watchdog())
        try:
            await self._done.wait()
        finally:
            watchdog.cancel()
            server.close()
            # Handlers must be woken and drained *before* wait_closed:
            # on Python >= 3.12.1 wait_closed blocks until every
            # connection handler returned, and idle handlers sit in
            # _next_cell until the wake-up below.
            self._wake_handlers()
            await self._drain_tasks(self._local_tasks)
            await self._drain_tasks(self._handler_tasks)
            await self._await_store_futures()
            await server.wait_closed()
            await self._reap_worker_processes()
            self.started.clear()
        if self._failure is not None:
            raise self._failure
        return self._results  # type: ignore[return-value]

    def _reset(self) -> None:
        self.worker_processes = []
        self.cache_hits = 0
        self.dispatched_cells = 0
        self.completed_cells = 0
        self.requeued_cells = 0
        self.locally_executed = 0
        self.rejected_workers = 0
        self.active_workers = 0
        self._failure = None
        self._handler_tasks = set()
        self._local_tasks = set()
        self._store_futures = set()

    # ------------------------------------------------------------------
    # Cell scheduling
    # ------------------------------------------------------------------
    def _wake_handlers(self) -> None:
        if self._work_event is not None:
            self._work_event.set()

    async def _next_cell(self) -> Optional[_Cell]:
        """The next cell to dispatch, or ``None`` once the sweep is over."""
        assert self._done is not None and self._work_event is not None
        while True:
            if self._failure is not None or self._done.is_set():
                return None
            if self._pending:
                return self._pending.popleft()
            self._work_event.clear()
            await self._work_event.wait()

    def _complete(self, index: int, result: ScenarioResult, *, store: bool = True) -> bool:
        """Record one cell's result; idempotent across duplicate paths.

        A cell can resolve twice — requeued after a lease expiry while
        the original worker still finishes, or served from the cache a
        concurrent sweep populated — so only the first resolution counts.
        """
        if self._results[index] is not None:
            return False
        self._results[index] = result
        self.completed_cells += 1
        if store:
            self._store_off_loop(result)
        self._outstanding -= 1
        if self._outstanding <= 0:
            assert self._done is not None
            self._done.set()
        self._wake_handlers()
        return True

    def _store_off_loop(self, result: ScenarioResult) -> None:
        """Persist a result without pickling multi-MB records on the loop.

        The write happens on the thread pool so heartbeat and frame
        handling never stall behind a slow (shared) filesystem; run_async
        drains the futures before returning, so the cache is complete by
        the time ``run`` hands the results back.
        """
        if not self.cache.enabled:
            return
        future = asyncio.get_running_loop().run_in_executor(
            None, self.cache.store, result
        )
        self._store_futures.add(future)

        def finish(done: asyncio.Future) -> None:
            self._store_futures.discard(done)
            exc = done.exception() if not done.cancelled() else None
            if exc is not None:
                # An unwritable cache corrupts nothing but must be loud:
                # the serial executor would have raised here too.
                self._fail(exc)

        future.add_done_callback(finish)

    def _fail(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        assert self._done is not None
        self._done.set()
        self._wake_handlers()

    def _requeue(self, cell: _Cell, reason: str) -> None:
        """Put a failed assignment back on the queue (or degrade it)."""
        if self._results[cell.index] is not None:
            return  # resolved through another path meanwhile
        self.requeued_cells += 1
        cell.retries += 1
        if cell.retries <= self.retry_budget:
            self._pending.append(cell)
            self._wake_handlers()
        else:
            self._go_local(
                cell,
                f"cell {cell.index} exhausted its retry budget "
                f"({self.retry_budget}); last failure: {reason}",
            )

    def _go_local(self, cell: _Cell, reason: str) -> None:
        """Degrade one cell to local execution on the coordinator."""
        if not self.local_fallback:
            self._fail(RuntimeAbort(f"distributed sweep failed: {reason}"))
            return
        self.locally_executed += 1
        task = asyncio.ensure_future(self._run_local(cell))
        self._local_tasks.add(task)
        task.add_done_callback(self._local_tasks.discard)

    async def _run_local(self, cell: _Cell) -> None:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, run_scenario, cell.spec)
        except Exception as exc:
            # The cell itself is broken — a serial run would raise too.
            self._fail(exc)
            return
        self._complete(cell.index, result)

    async def _watchdog(self) -> None:
        """Degrade every pending cell once no worker has shown up."""
        assert self._done is not None
        loop = asyncio.get_running_loop()
        interval = max(0.05, min(1.0, self.worker_wait_s / 5.0))
        while not self._done.is_set():
            await asyncio.sleep(interval)
            if self._done.is_set():
                return
            quiet_for = loop.time() - self._last_worker_seen
            if self.active_workers == 0 and quiet_for >= self.worker_wait_s:
                while self._pending:
                    cell = self._pending.popleft()
                    self._go_local(
                        cell,
                        f"no live workers for {self.worker_wait_s:.1f}s",
                    )

    # ------------------------------------------------------------------
    # Worker connections
    # ------------------------------------------------------------------
    async def _serve_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        try:
            await self._handle_worker(reader, writer)
        finally:
            writer.close()

    async def _handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        # -- handshake -------------------------------------------------
        try:
            kind, _ = wire.decode_envelope(await read_frame(reader))
            if kind != wire.HELLO:
                raise wire.WireError(
                    f"expected HELLO, got {wire.KIND_NAMES.get(kind, hex(kind))}"
                )
        except wire.WireError as exc:
            self.rejected_workers += 1
            try:
                write_frame(writer, wire.encode_reject(str(exc)))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            return
        except (asyncio.IncompleteReadError, FrameError, ConnectionError, OSError):
            return
        try:
            write_frame(writer, wire.encode_welcome())
            await writer.drain()
        except (ConnectionError, OSError):
            return

        self.active_workers += 1
        self._last_worker_seen = loop.time()
        try:
            while True:
                cell = await self._next_cell()
                if cell is None:
                    # Sweep over: tell the worker to exit cleanly.
                    try:
                        write_frame(writer, wire.encode_shutdown())
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    return
                # Dispatch-time cache re-check: another worker (or a
                # concurrent sweep on the same directory) may have
                # computed the cell since it was queued.  Off the loop:
                # unpickling a large record must not stall the frame
                # reads and heartbeats of every other connection.
                cached = (
                    await loop.run_in_executor(None, self.cache.load, cell.spec)
                    if self.cache.enabled
                    else None
                )
                if cached is not None:
                    self._complete(cell.index, cached, store=False)
                    continue
                try:
                    await self._attend(cell, reader, writer, loop)
                except _CellFailed as exc:
                    # The worker is healthy — only the cell raised.
                    # Requeue it and keep serving this connection; a
                    # single failing cell must not shrink the fleet.
                    self._requeue(cell, str(exc))
                    continue
                except _LeaseExpired:
                    self._requeue(cell, "lease expired without a heartbeat")
                    return  # drop the connection: its stream state is stale
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                    FrameError,
                    wire.WireError,
                ) as exc:
                    self._requeue(cell, f"worker connection failed: {exc!r}")
                    return
        finally:
            self.active_workers -= 1
            self._last_worker_seen = loop.time()

    async def _attend(
        self,
        cell: _Cell,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        """Dispatch one cell and babysit its lease until resolution."""
        write_frame(writer, wire.encode_task(cell.index, cell.spec))
        await writer.drain()
        self.dispatched_cells += 1
        deadline = loop.time() + self.lease_timeout_s
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise _LeaseExpired()
            try:
                frame = await asyncio.wait_for(read_frame(reader), timeout=remaining)
            except asyncio.TimeoutError:
                raise _LeaseExpired() from None
            kind, body = wire.decode_envelope(frame)
            if kind == wire.HEARTBEAT:
                if wire.decode_heartbeat(body) != cell.index:
                    raise wire.WireError("heartbeat for a cell not assigned here")
                self._last_worker_seen = loop.time()
                deadline = loop.time() + self.lease_timeout_s
            elif kind == wire.RESULT:
                index, result = wire.decode_result(body)
                if index != cell.index:
                    raise wire.WireError(
                        f"result for cell {index}, expected {cell.index}"
                    )
                if result.spec != cell.spec:
                    raise wire.WireError(
                        f"result spec does not match the dispatched cell {index}"
                    )
                self._last_worker_seen = loop.time()
                self._complete(cell.index, result)
                return
            elif kind == wire.ERROR:
                index, message = wire.decode_error(body)
                if index != cell.index:
                    raise wire.WireError(
                        f"error report for cell {index}, expected {cell.index}"
                    )
                self._last_worker_seen = loop.time()
                raise _CellFailed(f"worker failed on cell {index}: {message}")
            else:
                raise wire.WireError(
                    f"unexpected {wire.KIND_NAMES.get(kind, hex(kind))} "
                    "while a cell was assigned"
                )

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    async def _await_store_futures(self) -> None:
        """Wait for every off-loop cache write to land — no timeout, no
        cancel: :meth:`_store_off_loop` promises the cache is complete
        when ``run`` returns, and cancelling the asyncio future would
        orphan the running write thread and swallow its failure.  (The
        serial executor blocks on the same writes inline.)"""
        pending = {future for future in self._store_futures if not future.done()}
        if pending:
            await asyncio.wait(pending)

    @staticmethod
    async def _drain_tasks(tasks: Set[asyncio.Task], timeout: float = 5.0) -> None:
        pending = {task for task in tasks if not task.done()}
        if not pending:
            return
        _, still_pending = await asyncio.wait(pending, timeout=timeout)
        for task in still_pending:
            task.cancel()
        if still_pending:
            await asyncio.gather(*still_pending, return_exceptions=True)

    async def _reap_worker_processes(self, timeout: float = 5.0) -> None:
        loop = asyncio.get_running_loop()
        for proc in self.worker_processes:
            try:
                await asyncio.wait_for(
                    loop.run_in_executor(None, proc.wait), timeout=timeout
                )
            except asyncio.TimeoutError:
                proc.kill()
                await loop.run_in_executor(None, proc.wait)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
async def run_worker(
    host: str,
    port: int,
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    heartbeat_interval_s: float = 2.0,
    connect_attempts: int = 40,
    connect_delay_s: float = 0.25,
) -> int:
    """Serve one coordinator until it shuts the sweep down.

    Dials ``host:port`` (retrying while the coordinator is still coming
    up), handshakes, then executes dispatched cells on the local
    backend, emitting a heartbeat every ``heartbeat_interval_s`` while a
    cell runs.  Results are persisted to ``cache_dir`` (the shared
    coordination directory) *and* streamed back.  Returns the number of
    cells this worker computed.

    Raises :class:`~repro.runner.wire.WireError` if the coordinator
    rejects the handshake (version mismatch) and
    :class:`ConnectionError` if it never becomes reachable.
    """
    reader = writer = None
    last_error: Optional[Exception] = None
    for _ in range(connect_attempts):
        try:
            reader, writer = await asyncio.open_connection(host, port)
            break
        except OSError as exc:
            last_error = exc
            await asyncio.sleep(connect_delay_s)
    if reader is None or writer is None:
        raise ConnectionError(
            f"could not reach coordinator {host}:{port}: {last_error}"
        )

    loop = asyncio.get_running_loop()
    cache = ResultCache(cache_dir)
    computed = 0
    try:
        write_frame(writer, wire.encode_hello())
        await writer.drain()
        kind, body = wire.decode_envelope(await read_frame(reader))
        if kind == wire.REJECT:
            raise wire.WireError(
                f"coordinator rejected this worker: {wire.decode_reject(body)}"
            )
        if kind != wire.WELCOME:
            raise wire.WireError(
                f"expected WELCOME, got {wire.KIND_NAMES.get(kind, hex(kind))}"
            )

        while True:
            try:
                frame = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return computed  # coordinator gone: the sweep is over
            kind, body = wire.decode_envelope(frame)
            if kind == wire.SHUTDOWN:
                return computed
            if kind != wire.TASK:
                raise wire.WireError(
                    f"expected TASK, got {wire.KIND_NAMES.get(kind, hex(kind))}"
                )
            index, spec = wire.decode_task(body)

            def load_compute_store(spec=spec):
                # One worker-thread unit covering cache load, scenario
                # run and cache store, so the heartbeat loop below spans
                # every slow (shared) filesystem operation — a hung NFS
                # load must not silently expire the lease.
                cached = cache.load(spec)
                if cached is not None:
                    return cached, False
                fresh = run_scenario(spec)
                cache.store(fresh)
                return fresh, True

            future = loop.run_in_executor(None, load_compute_store)
            while True:
                done, _ = await asyncio.wait({future}, timeout=heartbeat_interval_s)
                if done:
                    break
                write_frame(writer, wire.encode_heartbeat(index))
                await writer.drain()
            try:
                result, freshly_computed = future.result()
            except Exception:
                write_frame(
                    writer, wire.encode_error(index, traceback.format_exc())
                )
                await writer.drain()
                continue
            computed += int(freshly_computed)
            write_frame(writer, wire.encode_result(index, result))
            await writer.drain()
    finally:
        writer.close()


def launch_local_workers(
    count: int,
    host: str,
    port: int,
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    python: Optional[str] = None,
) -> List[subprocess.Popen]:
    """Spawn ``count`` worker subprocesses dialing ``host:port``.

    Used by the executor's ``workers=N`` convenience path, the
    benchmarks and the tests.  The child environment gets the running
    checkout's ``src`` directory prepended to ``PYTHONPATH`` so workers
    resolve the same ``repro`` package even when it is not installed.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = os.environ.copy()
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    # ``-c`` rather than ``-m repro.runner.distributed``: the package
    # __init__ already imports this module, and runpy would warn about
    # re-executing a module that is in sys.modules.
    command = [
        python or sys.executable,
        "-c",
        "from repro.runner.distributed import worker_main; "
        "raise SystemExit(worker_main())",
        "--connect",
        f"{host}:{port}",
    ]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    return [subprocess.Popen(command, env=env) for _ in range(count)]


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point of the ``repro-sweep-worker`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep-worker",
        description="Serve scenario sweep cells for a DistributedSweepExecutor.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to dial",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="shared scenario-hash cache directory (the coordination layer)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="heartbeat period while a cell is executing (default: 2)",
    )
    parser.add_argument(
        "--connect-attempts",
        type=int,
        default=40,
        help="dial retries while the coordinator comes up (default: 40)",
    )
    args = parser.parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    try:
        asyncio.run(
            run_worker(
                host,
                int(port_text),
                cache_dir=args.cache_dir,
                heartbeat_interval_s=args.heartbeat_interval,
                connect_attempts=args.connect_attempts,
            )
        )
    except ReproError as exc:
        print(f"repro-sweep-worker: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"repro-sweep-worker: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        return 130
    return 0


def run_distributed_sweep(
    cells: Sequence[ScenarioSpec],
    *,
    workers: int = 2,
    cache_dir: Optional[Union[str, Path]] = None,
    **kwargs,
) -> List[ScenarioResult]:
    """One-shot convenience wrapper spawning local worker subprocesses."""
    executor = DistributedSweepExecutor(
        workers=workers, cache_dir=cache_dir, **kwargs
    )
    return executor.run(cells)


__all__ = [
    "DistributedSweepExecutor",
    "run_worker",
    "launch_local_workers",
    "worker_main",
    "run_distributed_sweep",
]


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(worker_main())
