"""Parameter sweeps over (N, k, f, payload, delay) grids.

The Table 1 and Fig. 7–10 reproductions compare, for every experiment
point, a *candidate* configuration against a *reference* configuration on
identical topologies and seeds.  :func:`sweep` runs the candidate over a
grid; :func:`paired_variations` runs candidate and reference back to back
and reports the relative variations the paper's tables plot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple

from repro.core.modifications import ModificationSet
from repro.metrics.report import relative_variation_percent
from repro.runner.experiment import ExperimentConfig, ExperimentResult, run_experiment


@dataclass(frozen=True)
class SweepPoint:
    """One (N, k, f) grid point with its per-seed results."""

    n: int
    k: int
    f: int
    payload_size: int
    synchronous: bool
    results: Tuple[ExperimentResult, ...]

    @property
    def mean_latency_ms(self) -> Optional[float]:
        latencies = [r.latency_ms for r in self.results if r.latency_ms is not None]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    @property
    def mean_bytes(self) -> float:
        return sum(r.total_bytes for r in self.results) / len(self.results)

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.n, self.k, self.f)


def sweep(
    base: ExperimentConfig,
    *,
    grid: Iterable[Tuple[int, int, int]],
    runs: int = 3,
) -> List[SweepPoint]:
    """Run ``base`` over every ``(n, k, f)`` of ``grid`` with ``runs`` seeds."""
    points: List[SweepPoint] = []
    for n, k, f in grid:
        config = replace(base, n=n, k=k, f=f)
        results = tuple(
            run_experiment(config.with_seed(base.seed + index)) for index in range(runs)
        )
        points.append(
            SweepPoint(
                n=n,
                k=k,
                f=f,
                payload_size=base.payload_size,
                synchronous=base.synchronous,
                results=results,
            )
        )
    return points


@dataclass(frozen=True)
class PairedVariation:
    """Relative variation of a candidate vs. a reference on one grid point."""

    n: int
    k: int
    f: int
    latency_variation_percent: Optional[float]
    bytes_variation_percent: float


def paired_variations(
    reference: ExperimentConfig,
    candidate_mods: ModificationSet,
    *,
    grid: Iterable[Tuple[int, int, int]],
    runs: int = 3,
) -> List[PairedVariation]:
    """Compare a candidate modification set against a reference configuration.

    Both configurations are run on the same topologies and seeds; the
    variation of mean latency and mean bytes is reported per grid point,
    matching the per-setting measurements summarized by Table 1 and
    Figs. 7–10.
    """
    variations: List[PairedVariation] = []
    for n, k, f in grid:
        ref_config = replace(reference, n=n, k=k, f=f)
        cand_config = replace(ref_config, modifications=candidate_mods)
        ref_lat: List[float] = []
        cand_lat: List[float] = []
        ref_bytes: List[float] = []
        cand_bytes: List[float] = []
        for index in range(runs):
            seed = reference.seed + index
            ref_result = run_experiment(ref_config.with_seed(seed))
            cand_result = run_experiment(cand_config.with_seed(seed))
            ref_bytes.append(ref_result.total_bytes)
            cand_bytes.append(cand_result.total_bytes)
            if ref_result.latency_ms is not None and cand_result.latency_ms is not None:
                ref_lat.append(ref_result.latency_ms)
                cand_lat.append(cand_result.latency_ms)
        mean_ref_bytes = sum(ref_bytes) / len(ref_bytes)
        mean_cand_bytes = sum(cand_bytes) / len(cand_bytes)
        latency_variation = None
        if ref_lat and cand_lat:
            latency_variation = relative_variation_percent(
                sum(cand_lat) / len(cand_lat), sum(ref_lat) / len(ref_lat)
            )
        variations.append(
            PairedVariation(
                n=n,
                k=k,
                f=f,
                latency_variation_percent=latency_variation,
                bytes_variation_percent=relative_variation_percent(
                    mean_cand_bytes, mean_ref_bytes
                ),
            )
        )
    return variations


__all__ = ["SweepPoint", "sweep", "PairedVariation", "paired_variations"]
