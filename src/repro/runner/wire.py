"""Coordinator↔worker message codec of the distributed sweep executor.

Messages ride inside the asyncio runtime's length-prefixed frames
(:mod:`repro.network.asyncio_runtime.framing`); this module defines what
a frame's payload looks like.  Every message starts with a fixed
envelope header::

    magic (4 bytes, b"RSWP") | version (1 byte) | kind (1 byte) | body

The magic rejects garbage frames (a stray client, a corrupted stream)
before any body parsing; the version byte is the compatibility tag — a
worker built against a different wire version is *rejected at decode
time* (:class:`WireVersionError`), which the coordinator's handshake
turns into an explicit REJECT reply so the operator sees why the worker
never picked up work.

Message kinds::

    worker → coordinator        coordinator → worker
    --------------------        --------------------
    HELLO                       WELCOME   (handshake accepted)
    RESULT(index, result)       REJECT(reason)
    ERROR(index, message)       TASK(index, spec)
    HEARTBEAT(index)            SHUTDOWN  (sweep finished)

``index`` is the cell's position in the coordinator's sweep, echoed back
so a late result cannot be attributed to the wrong cell after a requeue.
Spec/result bodies use :mod:`repro.scenarios.serialize`; decoding
failures of any layer surface as :class:`WireError` so connection
handlers have exactly one exception family to treat as "this peer is
broken".
"""

from __future__ import annotations

import struct

from repro.core.errors import ReproError
from repro.scenarios.engine import ScenarioResult
from repro.scenarios.serialize import (
    SerializationError,
    dumps_result,
    dumps_spec,
    loads_result,
    loads_spec,
)
from repro.scenarios.spec import ScenarioSpec

#: Rejects frames that are not sweep-protocol messages at all.
WIRE_MAGIC = b"RSWP"

#: Bump on any incompatible change to the envelope or the bodies.
#: v2: spec/result bodies may embed workload classes (WorkloadSpec,
#:     BroadcastSpec, BroadcastOutcome) that v1 builds cannot unpickle;
#:     the handshake rejects a mixed-version coordinator/worker pair
#:     up front instead of failing on the first workload task.
#: v3: spec bodies may embed lossy delay fields (DelaySpec.loss /
#:     burst windows) and adaptive fault classes (ObservationFilter,
#:     CrashWhen, TurnByzantineWhen, CutLinkWhen) that v2 builds cannot
#:     unpickle — or worse, would silently run loss-free; the handshake
#:     rejects the mixed pair up front.
WIRE_VERSION = 3

_HEADER_LEN = len(WIRE_MAGIC) + 2
_INDEX = struct.Struct(">I")

# -- message kinds ------------------------------------------------------
HELLO = 0x01
WELCOME = 0x02
REJECT = 0x03
TASK = 0x10
RESULT = 0x11
ERROR = 0x12
HEARTBEAT = 0x20
SHUTDOWN = 0x21

_KINDS = (HELLO, WELCOME, REJECT, TASK, RESULT, ERROR, HEARTBEAT, SHUTDOWN)

KIND_NAMES = {
    HELLO: "HELLO",
    WELCOME: "WELCOME",
    REJECT: "REJECT",
    TASK: "TASK",
    RESULT: "RESULT",
    ERROR: "ERROR",
    HEARTBEAT: "HEARTBEAT",
    SHUTDOWN: "SHUTDOWN",
}


class WireError(ReproError):
    """A frame is not a valid sweep-protocol message."""


class WireVersionError(WireError):
    """A well-formed message from an incompatible wire version."""

    def __init__(self, version: int) -> None:
        super().__init__(
            f"peer speaks wire version {version}, this build speaks {WIRE_VERSION}"
        )
        self.version = version


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------
def encode_envelope(kind: int, body: bytes = b"") -> bytes:
    """One tagged message: header + body."""
    if kind not in _KINDS:
        raise WireError(f"unknown message kind {kind:#x}")
    return WIRE_MAGIC + bytes((WIRE_VERSION, kind)) + body


def decode_envelope(frame: bytes) -> tuple:
    """Split a frame into ``(kind, body)``.

    Raises :class:`WireVersionError` for a well-formed envelope of a
    different version (the handshake's rejection signal) and plain
    :class:`WireError` for everything else that is not a sweep message.
    """
    if len(frame) < _HEADER_LEN:
        raise WireError(f"frame of {len(frame)} bytes is shorter than the header")
    if frame[: len(WIRE_MAGIC)] != WIRE_MAGIC:
        raise WireError("bad magic: not a sweep-protocol frame")
    version = frame[len(WIRE_MAGIC)]
    if version != WIRE_VERSION:
        raise WireVersionError(version)
    kind = frame[len(WIRE_MAGIC) + 1]
    if kind not in _KINDS:
        raise WireError(f"unknown message kind {kind:#x}")
    return kind, frame[_HEADER_LEN:]


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
def encode_hello() -> bytes:
    return encode_envelope(HELLO)


def encode_welcome() -> bytes:
    return encode_envelope(WELCOME)


def encode_reject(reason: str) -> bytes:
    return encode_envelope(REJECT, reason.encode("utf-8"))


def decode_reject(body: bytes) -> str:
    return body.decode("utf-8", errors="replace")


def encode_shutdown() -> bytes:
    return encode_envelope(SHUTDOWN)


def encode_task(index: int, spec: ScenarioSpec) -> bytes:
    return encode_envelope(TASK, _INDEX.pack(index) + dumps_spec(spec))


def decode_task(body: bytes) -> tuple:
    """``(index, spec)`` of a TASK body."""
    index, payload = _split_index(body)
    try:
        return index, loads_spec(payload)
    except SerializationError as exc:
        raise WireError(str(exc)) from exc


def encode_result(index: int, result: ScenarioResult) -> bytes:
    return encode_envelope(RESULT, _INDEX.pack(index) + dumps_result(result))


def decode_result(body: bytes) -> tuple:
    """``(index, result)`` of a RESULT body."""
    index, payload = _split_index(body)
    try:
        return index, loads_result(payload)
    except SerializationError as exc:
        raise WireError(str(exc)) from exc


def encode_error(index: int, message: str) -> bytes:
    return encode_envelope(ERROR, _INDEX.pack(index) + message.encode("utf-8"))


def decode_error(body: bytes) -> tuple:
    """``(index, message)`` of an ERROR body."""
    index, payload = _split_index(body)
    return index, payload.decode("utf-8", errors="replace")


def encode_heartbeat(index: int) -> bytes:
    return encode_envelope(HEARTBEAT, _INDEX.pack(index))


def decode_heartbeat(body: bytes) -> int:
    index, _ = _split_index(body)
    return index


def _split_index(body: bytes) -> tuple:
    if len(body) < _INDEX.size:
        raise WireError(f"message body of {len(body)} bytes has no cell index")
    (index,) = _INDEX.unpack_from(body)
    return index, body[_INDEX.size :]


__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "HELLO",
    "WELCOME",
    "REJECT",
    "TASK",
    "RESULT",
    "ERROR",
    "HEARTBEAT",
    "SHUTDOWN",
    "KIND_NAMES",
    "WireError",
    "WireVersionError",
    "encode_envelope",
    "decode_envelope",
    "encode_hello",
    "encode_welcome",
    "encode_reject",
    "decode_reject",
    "encode_shutdown",
    "encode_task",
    "decode_task",
    "encode_result",
    "decode_result",
    "encode_error",
    "decode_error",
    "encode_heartbeat",
    "decode_heartbeat",
]
