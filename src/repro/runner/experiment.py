"""Single-broadcast experiments over simulated partially connected networks.

This module reproduces the paper's measurement loop (Sec. 7.1): generate a
random regular graph for an ``(N, k, f)`` tuple, instantiate the protocol
under test on every process, have one process broadcast a payload, and
record the latency until every correct process delivers it together with
the total number of bytes put on the links.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.modifications import ModificationSet
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.network.adversary import build_behaviour
from repro.network.simulation.delays import AsynchronousDelay, DelayModel, FixedDelay
from repro.network.simulation.network import SimulatedNetwork
from repro.runner.configs import protocol_factory, protocol_family
from repro.topology.generators import Topology, random_regular_topology


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experiment point.

    Attributes
    ----------
    n, k, f:
        System size, network connectivity (degree of the random regular
        graph) and fault threshold.  The paper requires ``N ≥ 3f+1`` and
        ``k ≥ 2f+1``.
    payload_size:
        Size of the broadcast payload in bytes (16 or 1024 in the paper).
    synchronous:
        ``True`` for the fixed 50 ms delay model, ``False`` for the
        Normal(50, 50) ms asynchronous model.
    protocol:
        Protocol family passed to :func:`repro.runner.configs.protocol_factory`.
    modifications:
        Modification toggles of the protocol under test.
    byzantine:
        Mapping from behaviour name (``"mute"``, ``"forge"``, ``"drop"``,
        ``"equivocate"``) to the number of processes exhibiting it.  At
        most ``f`` processes in total are replaced; the source is only
        replaced for ``"equivocate"``.
    seed:
        Seed controlling the topology, the delays and the fault placement.
    source:
        Identifier of the broadcasting process (defaults to process 0).
    max_events:
        Safety cap on simulation events.
    shared_bandwidth_bps:
        Shared-medium rate emulating the paper's single-host, 1 Gb/s
        ``netem`` testbed; set to ``None`` to disable contention.
    """

    n: int
    k: int
    f: int
    payload_size: int = 16
    synchronous: bool = True
    protocol: str = "cross_layer"
    modifications: ModificationSet = field(default_factory=ModificationSet.dolev_optimized)
    byzantine: Tuple[Tuple[str, int], ...] = ()
    seed: int = 0
    source: int = 0
    bid: int = 0
    max_events: Optional[int] = 5_000_000
    shared_bandwidth_bps: Optional[float] = 1e9

    def delay_model(self) -> DelayModel:
        """The delay model matching the ``synchronous`` flag."""
        if self.synchronous:
            return FixedDelay(50.0)
        return AsynchronousDelay(50.0, 50.0)

    def system(self) -> SystemConfig:
        """The :class:`SystemConfig` of this experiment."""
        return SystemConfig.for_system(self.n, self.f)

    def payload(self) -> bytes:
        """A deterministic payload of ``payload_size`` bytes."""
        pattern = b"repro-payload-"
        data = (pattern * (self.payload_size // len(pattern) + 1))[: self.payload_size]
        return data if data else b""

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """A copy of this configuration with a different seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment."""

    config: ExperimentConfig
    #: Latency until all correct processes delivered, in simulated ms
    #: (``None`` when at least one correct process did not deliver).
    latency_ms: Optional[float]
    total_bytes: int
    message_count: int
    delivered_processes: Tuple[int, ...]
    correct_processes: Tuple[int, ...]
    metrics: RunMetrics

    @property
    def all_correct_delivered(self) -> bool:
        """Whether every correct process delivered the broadcast."""
        return set(self.correct_processes) <= set(self.delivered_processes)

    @property
    def total_kilobytes(self) -> float:
        """Network consumption in kB, the unit used by Figs. 4–6."""
        return self.total_bytes / 1000.0

    @property
    def peak_state_size(self) -> int:
        """Largest per-process state proxy (Sec. 7.3)."""
        return self.metrics.peak_state_size


def _select_byzantine(
    config: ExperimentConfig, topology: Topology
) -> Dict[int, str]:
    """Choose which processes misbehave and how."""
    assignments: Dict[int, str] = {}
    requested = sum(count for _, count in config.byzantine)
    if requested > config.f:
        raise ConfigurationError(
            f"{requested} Byzantine processes requested but f={config.f}"
        )
    candidates = [p for p in topology.nodes if p != config.source]
    index = 0
    for behaviour, count in config.byzantine:
        if behaviour == "equivocate":
            assignments[config.source] = "equivocate"
            count -= 1
        for _ in range(max(0, count)):
            if index >= len(candidates):
                raise ConfigurationError("not enough processes for the Byzantine set")
            assignments[candidates[index]] = behaviour
            index += 1
    return assignments


def _build_protocols(
    config: ExperimentConfig,
    system: SystemConfig,
    topology: Topology,
    byzantine: Dict[int, str],
) -> Dict[int, object]:
    builder = protocol_factory(config.protocol, config.modifications)
    family = protocol_family(config.protocol)
    protocols: Dict[int, object] = {}
    for pid in topology.nodes:
        neighbors = sorted(topology.neighbors(pid))
        behaviour = byzantine.get(pid)
        if behaviour is None:
            protocols[pid] = builder(pid, system, neighbors)
        else:
            try:
                protocols[pid] = build_behaviour(
                    behaviour,
                    pid,
                    neighbors,
                    system=system,
                    inner_factory=lambda pid=pid, neighbors=neighbors: builder(
                        pid, system, neighbors
                    ),
                    family=family,
                    seed=config.seed + pid,
                )
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from exc
    return protocols


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one broadcast and measure it.

    The topology is a random regular graph of degree ``k`` (regenerated
    until its vertex connectivity is at least ``min(k, 2f+1)``), except
    for the ``bracha`` protocol family which requires a complete graph.
    """
    system = config.system()
    if config.protocol == "bracha":
        from repro.topology.generators import complete_topology

        topology = complete_topology(config.n)
    else:
        topology = random_regular_topology(
            config.n,
            config.k,
            seed=config.seed,
            min_connectivity=min(config.k, system.min_connectivity),
        )
    byzantine = _select_byzantine(config, topology)
    protocols = _build_protocols(config, system, topology, byzantine)

    network = SimulatedNetwork(
        topology,
        protocols,
        delay_model=config.delay_model(),
        seed=config.seed,
        collector=MetricsCollector(),
        shared_bandwidth_bps=config.shared_bandwidth_bps,
    )
    network.broadcast(config.source, config.payload(), config.bid)
    metrics = network.run(max_events=config.max_events)

    correct = tuple(p for p in topology.nodes if p not in byzantine)
    key = (config.source, config.bid)
    delivered = metrics.delivering_processes(key)
    latency = metrics.delivery_latency(key, correct)
    return ExperimentResult(
        config=config,
        latency_ms=latency,
        total_bytes=metrics.total_bytes,
        message_count=metrics.message_count,
        delivered_processes=delivered,
        correct_processes=correct,
        metrics=metrics,
    )


def run_repeated(
    config: ExperimentConfig, *, runs: int = 3, base_seed: Optional[int] = None
) -> List[ExperimentResult]:
    """Run the same experiment with ``runs`` different seeds.

    The paper reports the average of at least 5 runs per point; the
    benchmarks default to 3 to keep the default scale tractable and use
    more when ``REPRO_SCALE=paper``.
    """
    start = config.seed if base_seed is None else base_seed
    return [run_experiment(config.with_seed(start + index)) for index in range(runs)]


__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment", "run_repeated"]
