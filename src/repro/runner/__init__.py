"""Experiment runner used by the benchmarks and the examples.

:func:`~repro.runner.experiment.run_experiment` builds a topology,
instantiates one protocol per process (optionally replacing up to ``f`` of
them with Byzantine behaviours), broadcasts a payload from a source and
returns the latency / network-consumption metrics of the run —
reproducing the measurement loop of Sec. 7.1.
"""

from repro.runner.cache import CACHE_VERSION, ResultCache, partition_cached
from repro.runner.configs import (
    PROTOCOL_CONFIGURATIONS,
    modification_set_for,
    protocol_factory,
    protocol_family,
)
from repro.runner.distributed import (
    DistributedSweepExecutor,
    launch_local_workers,
    run_distributed_sweep,
    run_worker,
    worker_main,
)
from repro.runner.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_repeated,
)
from repro.runner.parallel import StreamedResult, SweepExecutor, run_sweep
from repro.runner.sweep import SweepPoint, sweep

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_repeated",
    "SweepPoint",
    "sweep",
    "SweepExecutor",
    "StreamedResult",
    "run_sweep",
    "DistributedSweepExecutor",
    "run_distributed_sweep",
    "run_worker",
    "launch_local_workers",
    "worker_main",
    "ResultCache",
    "partition_cached",
    "CACHE_VERSION",
    "PROTOCOL_CONFIGURATIONS",
    "modification_set_for",
    "protocol_factory",
    "protocol_family",
]
