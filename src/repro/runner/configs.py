"""Named protocol configurations used throughout the evaluation.

The paper compares a number of configurations of the same protocol:

* ``bd`` — the unmodified layered Bracha-Dolev combination;
* ``bdopt`` — Bracha over Dolev with Bonomi et al.'s MD.1–5 (the
  state-of-the-art baseline);
* ``bdopt+mbd1`` — BDopt plus MBD.1, the reference configuration of
  Table 1 for MBD.2–12;
* ``mbd<i>`` — BDopt + MBD.1 + the single modification ``i`` (``mbd1``
  is BDopt + MBD.1 alone);
* ``lat`` / ``bdw`` / ``lat_bdw`` — the composite configurations of
  Sec. 7.4;
* ``all`` — every modification enabled.

:func:`protocol_factory` maps a configuration name to a callable building
one protocol instance per process, which the experiment runner and the
benchmarks use.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from repro.core.config import SystemConfig
from repro.core.modifications import ModificationSet
from repro.brb.bracha import BrachaBroadcast
from repro.brb.bracha_dolev import BrachaDolevBroadcast
from repro.brb.dolev import DolevBroadcast
from repro.brb.optimized import CrossLayerBrachaDolev
from repro.rco.protocol import RCO_PROTOCOLS, CausalOrderBroadcast

ProtocolBuilder = Callable[[int, SystemConfig, Iterable[int]], object]


def _cross_layer_builder(mods: ModificationSet) -> ProtocolBuilder:
    def build(process_id: int, config: SystemConfig, neighbors: Iterable[int]):
        return CrossLayerBrachaDolev(
            process_id, config, neighbors, modifications=mods
        )

    return build


def modification_set_for(name: str) -> ModificationSet:
    """The :class:`ModificationSet` of a named configuration."""
    normalized = name.lower().replace(" ", "").replace("-", "_").replace(".", "")
    if normalized in ("bd", "none"):
        return ModificationSet.none()
    if normalized == "bdopt":
        return ModificationSet.dolev_optimized()
    if normalized in ("bdopt+mbd1", "bdoptmbd1", "mbd1"):
        return ModificationSet.bdopt_with_mbd1()
    if normalized.startswith("mbd"):
        index = int(normalized[3:])
        return ModificationSet.single_mbd(index)
    if normalized in ("lat", "latency"):
        return ModificationSet.latency_optimized()
    if normalized in ("bdw", "bandwidth"):
        return ModificationSet.bandwidth_optimized()
    if normalized in ("lat_bdw", "latbdw", "lat&bdw"):
        return ModificationSet.latency_and_bandwidth_optimized()
    if normalized == "all":
        return ModificationSet.all_enabled()
    raise ValueError(f"unknown configuration name: {name}")


#: Named configurations of the cross-layer protocol used by the benchmarks.
PROTOCOL_CONFIGURATIONS: Dict[str, ModificationSet] = {
    "bdopt": ModificationSet.dolev_optimized(),
    "mbd1": ModificationSet.bdopt_with_mbd1(),
    "lat": ModificationSet.latency_optimized(),
    "bdw": ModificationSet.bandwidth_optimized(),
    "lat_bdw": ModificationSet.latency_and_bandwidth_optimized(),
    "all": ModificationSet.all_enabled(),
}
PROTOCOL_CONFIGURATIONS.update(
    {f"mbd{i}": ModificationSet.single_mbd(i) for i in range(2, 13)}
)


def protocol_family(protocol: str) -> str:
    """Message-format family of a protocol name (for crafted adversary traffic).

    An RCO wrapper speaks its inner BRB protocol's wire format — the
    vector clock travels inside the payload — so crafted adversary
    traffic against ``rco_*`` protocols uses the inner family.
    """
    protocol = RCO_PROTOCOLS.get(protocol, protocol)
    if protocol == "bracha":
        return "bracha"
    if protocol in ("bracha_dolev", "dolev"):
        return "bracha_dolev"
    return "cross_layer"


def protocol_factory(protocol: str, mods: ModificationSet = None) -> ProtocolBuilder:
    """Return a builder for one of the protocol families.

    Parameters
    ----------
    protocol:
        ``"cross_layer"`` (the paper's protocol), ``"bracha_dolev"`` (the
        layered combination), ``"bracha"`` (fully connected baseline),
        ``"dolev"`` (reliable communication only), or any of
        :data:`~repro.rco.protocol.RCO_PROTOCOLS` — the causal-order
        wrapper stacked on the named inner BRB protocol.
    mods:
        Modification toggles for the partially-connected protocols.
    """
    mods = mods if mods is not None else ModificationSet.dolev_optimized()
    if protocol in RCO_PROTOCOLS:
        inner_builder = protocol_factory(RCO_PROTOCOLS[protocol], mods)
        return lambda pid, config, neighbors: CausalOrderBroadcast(
            pid, config, neighbors, inner=inner_builder(pid, config, neighbors)
        )
    if protocol == "cross_layer":
        return _cross_layer_builder(mods)
    if protocol == "bracha_dolev":
        return lambda pid, config, neighbors: BrachaDolevBroadcast(
            pid, config, neighbors, modifications=mods
        )
    if protocol == "bracha":
        return lambda pid, config, neighbors: BrachaBroadcast(pid, config, neighbors)
    if protocol == "dolev":
        return lambda pid, config, neighbors: DolevBroadcast(
            pid, config, neighbors, modifications=mods
        )
    raise ValueError(f"unknown protocol family: {protocol}")


__all__ = [
    "PROTOCOL_CONFIGURATIONS",
    "modification_set_for",
    "protocol_factory",
    "protocol_family",
]
