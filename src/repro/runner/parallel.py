"""Parallel sweep executor over scenario grid cells.

Runs a sequence of :class:`~repro.scenarios.spec.ScenarioSpec` cells
through :func:`~repro.scenarios.engine.run_scenario`, either inline
(``workers <= 1``) or fanned out over a :mod:`multiprocessing` pool.
Each cell declares its execution backend (``spec.backend``): simulation
cells run on the discrete-event simulator, asyncio cells materialize an
:class:`~repro.network.asyncio_runtime.AsyncioCluster` on real localhost
sockets — worker processes host their own event loop, and the ephemeral
port allocation keeps concurrently running cells from colliding.

For fan-out past one machine, see
:class:`~repro.runner.distributed.DistributedSweepExecutor`, which
shares this module's cache layer (:mod:`repro.runner.cache`) and
determinism contract but ships cells to worker *hosts* over TCP.

Guarantees:

* **Seed stability** — a *simulation* cell's result only depends on the
  cell itself (every random choice derives from ``spec.seed``), so the
  parallel path returns results equal to the serial path for the same
  cells, whatever the worker count or scheduling order.  Asyncio cells
  share the deterministic expansion (topology, placement, wiring) but
  carry wall-clock timings; only their delivery/safety verdicts are
  stable (see :mod:`repro.scenarios.conformance`).
* **Order preservation** — results come back in cell order.
* **Caching** — with a ``cache_dir``, each result is persisted under its
  scenario hash, which includes the backend, so the same scenario run on
  two backends occupies two cache slots; re-running a sweep only
  executes the cells not yet cached (the cached record's executing
  backend and spec are verified against the requesting cell before being
  trusted, so collisions of either kind degrade to a re-run).
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.runner.cache import ResultCache, partition_cached
from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec


def _execute_cell(spec: ScenarioSpec) -> ScenarioResult:
    """Top-level worker entry point (must be picklable for the pool)."""
    return run_scenario(spec)


class SweepExecutor:
    """Runs scenario cells serially or over a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``None`` uses the CPU count and
        ``workers <= 1`` selects the serial path (no pool, no pickling).
    cache_dir:
        Directory for per-cell result caching keyed by scenario hash;
        ``None`` disables caching.
    mp_context:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, …); ``None`` uses the platform default.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.cache = ResultCache(cache_dir)
        self.mp_context = mp_context
        #: Number of cells served from the cache by the last ``run`` call.
        self.cache_hits = 0

    @property
    def cache_dir(self) -> Optional[Path]:
        return self.cache.cache_dir

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cells: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Run every cell and return results in cell order."""
        cells = list(cells)
        results, pending, self.cache_hits = partition_cached(cells, self.cache)

        if pending:
            specs = [cells[index] for index in pending]
            if self.workers <= 1 or len(specs) == 1:
                fresh = [_execute_cell(spec) for spec in specs]
            else:
                context = (
                    multiprocessing.get_context(self.mp_context)
                    if self.mp_context is not None
                    else multiprocessing
                )
                pool_size = min(self.workers, len(specs))
                with context.Pool(processes=pool_size) as pool:
                    fresh = pool.map(_execute_cell, specs, chunksize=1)
            for index, result in zip(pending, fresh):
                results[index] = result
                self.cache.store(result)

        return results  # type: ignore[return-value]


def run_sweep(
    cells: Sequence[ScenarioSpec],
    *,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    mp_context: Optional[str] = None,
) -> List[ScenarioResult]:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    executor = SweepExecutor(workers=workers, cache_dir=cache_dir, mp_context=mp_context)
    return executor.run(cells)


__all__ = ["SweepExecutor", "run_sweep"]
