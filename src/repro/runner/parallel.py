"""Parallel sweep executor over scenario grid cells.

Runs a sequence of :class:`~repro.scenarios.spec.ScenarioSpec` cells
through :func:`~repro.scenarios.engine.run_scenario`, either inline
(``workers <= 1``) or fanned out over a :mod:`multiprocessing` pool.
Each cell declares its execution backend (``spec.backend``): simulation
cells run on the discrete-event simulator, asyncio cells materialize an
:class:`~repro.network.asyncio_runtime.AsyncioCluster` on real localhost
sockets — worker processes host their own event loop, and the ephemeral
port allocation keeps concurrently running cells from colliding.

For fan-out past one machine, see
:class:`~repro.runner.distributed.DistributedSweepExecutor`, which
shares this module's cache layer (:mod:`repro.runner.cache`) and
determinism contract but ships cells to worker *hosts* over TCP.

Guarantees:

* **Seed stability** — a *simulation* cell's result only depends on the
  cell itself (every random choice derives from ``spec.seed``), so the
  parallel path returns results equal to the serial path for the same
  cells, whatever the worker count or scheduling order.  Asyncio cells
  share the deterministic expansion (topology, placement, wiring) but
  carry wall-clock timings; only their delivery/safety verdicts are
  stable (see :mod:`repro.scenarios.conformance`).
* **Order preservation** — results come back in cell order.
* **Caching** — with a ``cache_dir``, each result is persisted under its
  scenario hash, which includes the backend, so the same scenario run on
  two backends occupies two cache slots; re-running a sweep only
  executes the cells not yet cached (the cached record's executing
  backend and spec are verified against the requesting cell before being
  trusted, so collisions of either kind degrade to a re-run).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.runner.cache import ResultCache, partition_cached
from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec


def _execute_cell(spec: ScenarioSpec) -> ScenarioResult:
    """Top-level worker entry point (must be picklable for the pool)."""
    return run_scenario(spec)


@dataclass(frozen=True)
class StreamedResult:
    """One cell's outcome as yielded by :meth:`SweepExecutor.run_stream`."""

    #: Position of the cell in the consumed stream (0-based).
    index: int
    spec: ScenarioSpec
    result: ScenarioResult
    #: Whether the result was served from the scenario-hash cache.
    cached: bool


class SweepExecutor:
    """Runs scenario cells serially or over a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``None`` uses the CPU count and
        ``workers <= 1`` selects the serial path (no pool, no pickling).
    cache_dir:
        Directory for per-cell result caching keyed by scenario hash;
        ``None`` disables caching.
    mp_context:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, …); ``None`` uses the platform default.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.cache = ResultCache(cache_dir)
        self.mp_context = mp_context
        #: Number of cells served from the cache by the last ``run`` call.
        self.cache_hits = 0

    @property
    def cache_dir(self) -> Optional[Path]:
        return self.cache.cache_dir

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cells: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Run every cell and return results in cell order."""
        cells = list(cells)
        results, pending, self.cache_hits = partition_cached(cells, self.cache)

        if pending:
            specs = [cells[index] for index in pending]
            if self.workers <= 1 or len(specs) == 1:
                fresh = [_execute_cell(spec) for spec in specs]
            else:
                context = (
                    multiprocessing.get_context(self.mp_context)
                    if self.mp_context is not None
                    else multiprocessing
                )
                pool_size = min(self.workers, len(specs))
                with context.Pool(processes=pool_size) as pool:
                    fresh = pool.map(_execute_cell, specs, chunksize=1)
            for index, result in zip(pending, fresh):
                results[index] = result
                self.cache.store(result)

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Budgeted streaming execution
    # ------------------------------------------------------------------
    def run_stream(
        self,
        cells: Iterable[ScenarioSpec],
        *,
        time_budget_s: Optional[float] = None,
        max_cells: Optional[int] = None,
    ) -> Iterator[StreamedResult]:
        """Stream results from a (possibly unbounded) iterable of cells.

        This is the fuzzing farm's ingestion path: ``cells`` may be an
        infinite generator, and execution stops *consuming* it once the
        time budget elapses or ``max_cells`` cells have been taken —
        whichever comes first (no budget means: drain the iterable).
        Results are yielded in consumption order, as soon as available:

        * on the serial path each cell runs inline, so the budget is
          checked between cells;
        * with ``workers > 1`` a process-pool window of ``workers``
          cells is kept in flight; cells already dispatched when the
          budget runs out still complete and are yielded (a budgeted
          stream never discards computed results — they are cached).

        Cache semantics match :meth:`run`: each consumed cell is first
        looked up by scenario hash (hits count toward ``max_cells`` and
        ``cache_hits``), and every fresh result is persisted.
        """
        if time_budget_s is not None and time_budget_s < 0:
            raise ValueError(f"time_budget_s must be >= 0, got {time_budget_s}")
        if max_cells is not None and max_cells < 0:
            raise ValueError(f"max_cells must be >= 0, got {max_cells}")
        deadline = (
            None if time_budget_s is None else time.monotonic() + time_budget_s
        )
        iterator = iter(cells)
        self.cache_hits = 0
        consumed = 0

        def budget_allows_next() -> bool:
            if max_cells is not None and consumed >= max_cells:
                return False
            if deadline is not None and time.monotonic() >= deadline:
                return False
            return True

        if self.workers <= 1:
            index = 0
            while budget_allows_next():
                try:
                    spec = next(iterator)
                except StopIteration:
                    return
                consumed += 1
                cached = self.cache.load(spec)
                if cached is not None:
                    self.cache_hits += 1
                    yield StreamedResult(index, spec, cached, True)
                else:
                    result = _execute_cell(spec)
                    self.cache.store(result)
                    yield StreamedResult(index, spec, result, False)
                index += 1
            return

        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context is not None
            else multiprocessing
        )
        # (index, spec, pending AsyncResult or None, cached result or None)
        in_flight: deque = deque()
        with context.Pool(processes=self.workers) as pool:
            index = 0
            exhausted = False
            while True:
                while (
                    not exhausted
                    and len(in_flight) < self.workers
                    and budget_allows_next()
                ):
                    try:
                        spec = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    consumed += 1
                    cached = self.cache.load(spec)
                    if cached is not None:
                        self.cache_hits += 1
                        in_flight.append((index, spec, None, cached))
                    else:
                        in_flight.append(
                            (index, spec, pool.apply_async(_execute_cell, (spec,)), None)
                        )
                    index += 1
                if not in_flight:
                    # Nothing pending and nothing more to consume: the
                    # fill loop above only leaves in_flight empty when
                    # the stream is exhausted or the budget ran out.
                    return
                item_index, spec, pending, cached = in_flight.popleft()
                if pending is None:
                    yield StreamedResult(item_index, spec, cached, True)
                else:
                    result = pending.get()
                    self.cache.store(result)
                    yield StreamedResult(item_index, spec, result, False)


def run_sweep(
    cells: Sequence[ScenarioSpec],
    *,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    mp_context: Optional[str] = None,
) -> List[ScenarioResult]:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    executor = SweepExecutor(workers=workers, cache_dir=cache_dir, mp_context=mp_context)
    return executor.run(cells)


__all__ = ["SweepExecutor", "StreamedResult", "run_sweep"]
