"""Scenario-hash result cache shared by every sweep executor.

One cache entry per scenario hash (see
:meth:`~repro.scenarios.spec.ScenarioSpec.scenario_hash`), stored as a
pickled ``(version, backend, result)`` record written atomically — a
temp file unique to the writing process renamed into place, so many
worker processes on the same cache directory never interleave bytes.

In the distributed executor the cache directory doubles as the
coordination layer: workers persist every result they compute, the
coordinator re-checks the cache at dispatch time, and a cell cached by
*any* participant is never dispatched again (including across separate
sweeps sharing the directory).

Loading is paranoid by design — a cache can only ever save work, never
corrupt a sweep:

* unreadable entries (truncated files, foreign pickles, records from a
  code version whose classes moved) degrade to a re-run;
* the record ``version`` must match :data:`CACHE_VERSION`;
* the record's ``backend`` tag — the backend that *executed* the stored
  result — must match the requesting spec's backend, so a crafted or
  misplaced entry cannot satisfy a simulation cell with asyncio output
  (the cross-backend collision fix; the spec-equality check alone would
  accept an entry whose pickled spec was rewritten to match);
* the stored result's spec must equal the requesting spec, so a hash
  collision degrades to a re-run as well.
"""

from __future__ import annotations

import itertools
import os
import pickle
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.scenarios.engine import ScenarioResult
from repro.scenarios.spec import ScenarioSpec

#: Bump when the pickled record layout changes to invalidate stale caches.
#: v2: ScenarioSpec grew the ``backend`` field.
#: v3: the record carries the executing backend, verified on load.
#: v4: ScenarioSpec grew the ``workload`` field and ScenarioResult the
#:     per-broadcast ``outcomes`` — pre-v4 records lack both and must
#:     miss cleanly (the version check below runs before any attribute
#:     of the stored result is touched).
#: v5: DelaySpec grew the loss fields (``loss``, ``burst_period_ms``,
#:     ``burst_len_ms``) and ScenarioSpec the ``adaptive`` faults — a
#:     pre-v5 record's spec lacks them, so spec equality against a
#:     current-build spec would be meaningless; the version check makes
#:     it miss cleanly before any field is compared.
CACHE_VERSION = 5

#: Disambiguates concurrent same-process writers of one cache slot
#: (``next`` on a C-implemented counter is atomic under the GIL).
_TMP_COUNTER = itertools.count()


class ResultCache:
    """Per-cell result persistence keyed by scenario hash.

    ``cache_dir=None`` disables the cache: every operation becomes a
    no-op, which lets executors hold one unconditional instance.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    @property
    def enabled(self) -> bool:
        return self.cache_dir is not None

    def path_for(self, spec: ScenarioSpec) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.scenario_hash()}.pkl"

    def load(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """The cached result for ``spec``, or ``None`` to mean re-run."""
        path = self.path_for(spec)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                version, backend, result = pickle.load(handle)
        except Exception:
            # Any unreadable entry — truncated file, foreign pickle, a
            # pre-v3 record with a different tuple shape — degrades to a
            # re-run, never to a failed sweep.
            return None
        if version != CACHE_VERSION or not isinstance(result, ScenarioResult):
            # Older schema versions (e.g. a v3 record unpickled by a
            # build whose ScenarioResult gained workload fields) are
            # skipped *before* the stored result is inspected further —
            # touching attributes of a stale-layout instance could raise.
            return None
        if backend != spec.backend:
            # Cross-backend collision: the entry was produced by another
            # execution backend and must not satisfy this cell.
            return None
        if result.spec != spec:
            # Hash collision or stale spec layout: recompute.
            return None
        return result

    def store(self, result: ScenarioResult) -> None:
        """Persist ``result`` under its scenario hash (atomic, idempotent)."""
        path = self.path_for(result.spec)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp name embeds the pid and a process-local counter so
        # concurrent writers — other processes sharing the directory,
        # and this process's own thread pool storing two same-hash
        # results at once — never interleave bytes in one .tmp file.
        tmp = path.with_suffix(f".{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(
                    (CACHE_VERSION, result.spec.backend, result),
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)
        except BaseException:
            # Don't litter the (possibly long-lived, shared) directory
            # with half-written temp files on ENOSPC, pickling errors or
            # cancellation; a process killed mid-write still leaks one,
            # which paranoid loading simply never reads.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def partition_cached(
    cells: Sequence[ScenarioSpec], cache: ResultCache
) -> Tuple[List[Optional[ScenarioResult]], List[int], int]:
    """Split a sweep into served-from-cache and still-pending cells.

    Returns ``(results, pending, hits)``: the results list in cell order
    with cached entries filled in, the indices still needing execution,
    and the hit count.  Both sweep executors start a run here.
    """
    results: List[Optional[ScenarioResult]] = [None] * len(cells)
    pending: List[int] = []
    hits = 0
    for index, spec in enumerate(cells):
        cached = cache.load(spec)
        if cached is not None:
            results[index] = cached
            hits += 1
        else:
            pending.append(index)
    return results, pending, hits


__all__ = ["CACHE_VERSION", "ResultCache", "partition_cached"]
