"""Abstract interface implemented by every broadcast protocol.

The interface is *sans-io*: a protocol is a deterministic state machine
that reacts to three stimuli — start-up, a local broadcast request and the
reception of a message from a neighbor — and answers with a list of
:class:`repro.core.events.Command` objects.  The hosting runtime (the
discrete-event simulation of :mod:`repro.network.simulation` or the real
asyncio transport of :mod:`repro.network.asyncio_runtime`) executes the
commands.  This separation lets the exact same protocol code run in the
benchmarks, the property-based tests and real deployments.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.events import BRBDeliver, Command


class BroadcastProtocol(abc.ABC):
    """Base class of every broadcast protocol of the library.

    Parameters
    ----------
    process_id:
        Identifier of the process running this instance.
    config:
        System-wide configuration (process set, fault threshold).
    neighbors:
        Identifiers of the processes directly connected to this one.  On a
        fully connected network this is every other process.
    """

    # Slotted: protocol attribute reads sit on the per-message hot path
    # of the simulator.  Subclasses that declare no ``__slots__`` of
    # their own still get an instance ``__dict__`` automatically.
    __slots__ = ("process_id", "config", "neighbors", "delivered")

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Sequence[int],
    ) -> None:
        if not config.is_process(process_id):
            raise ConfigurationError(
                f"process {process_id} is not part of the configured system"
            )
        unknown = [q for q in neighbors if not config.is_process(q)]
        if unknown:
            raise ConfigurationError(f"unknown neighbor identifiers: {unknown}")
        if process_id in neighbors:
            raise ConfigurationError("a process cannot be its own neighbor")
        self.process_id = process_id
        self.config = config
        self.neighbors: Tuple[int, ...] = tuple(sorted(set(neighbors)))
        #: Payloads delivered so far, keyed by ``(source, bid)``.
        self.delivered: Dict[Tuple[int, int], bytes] = {}

    # ------------------------------------------------------------------
    # Protocol entry points
    # ------------------------------------------------------------------
    def on_start(self) -> List[Command]:
        """Called once by the runtime before any message is exchanged."""
        return []

    @abc.abstractmethod
    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        """Initiate the broadcast of ``payload`` with broadcast id ``bid``."""

    @abc.abstractmethod
    def on_message(self, sender: int, message: Any) -> List[Command]:
        """Handle a message received from direct neighbor ``sender``.

        ``sender`` is guaranteed by the authenticated-link assumption to be
        the process that actually emitted the message.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def has_delivered(self, source: int, bid: int) -> bool:
        """Return ``True`` when ``(source, bid)`` has been delivered locally."""
        return (source, bid) in self.delivered

    def delivered_payload(self, source: int, bid: int) -> Optional[bytes]:
        """Payload delivered for ``(source, bid)``, or ``None``."""
        return self.delivered.get((source, bid))

    def _record_delivery(self, source: int, bid: int, payload: bytes) -> BRBDeliver:
        """Record a delivery locally and build the corresponding command."""
        self.delivered[(source, bid)] = payload
        return BRBDeliver(source=source, bid=bid, payload=payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} pid={self.process_id} "
            f"neighbors={len(self.neighbors)} delivered={len(self.delivered)}>"
        )


__all__ = ["BroadcastProtocol"]
