"""Wire messages of the Bracha, Dolev and cross-layer Bracha-Dolev protocols.

Three message families are defined:

* :class:`BrachaMessage` — the SEND / ECHO / READY messages of Bracha's
  protocol (Algorithm 1).  On a fully connected network they are sent
  directly over authenticated links; in the layered Bracha-Dolev
  combination they travel as the content of a :class:`DolevMessage`.
* :class:`DolevMessage` — a content plus the path of process identifiers
  it has traversed (Algorithm 2).
* :class:`CrossLayerMessage` — the message format of the paper's
  cross-layer combination (Sec. 5 and 6), with optional fields so that the
  wire cost of MBD.1 (local payload identifiers) and MBD.5 (optional
  fields) can be accounted for precisely, and with the merged
  ECHO_ECHO / READY_ECHO types introduced by MBD.3 and MBD.4.

Every message exposes ``wire_size(sizes)`` returning the number of bytes
the message occupies on a link, computed from the per-field sizes of
Table 3 (:class:`repro.core.sizes.FieldSizes`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from repro.core.sizes import FieldSizes, PAPER_FIELD_SIZES


class MessageType(enum.IntEnum):
    """Type tag of a protocol message."""

    SEND = 1
    ECHO = 2
    READY = 3
    ECHO_ECHO = 4
    READY_ECHO = 5

    @property
    def is_merged(self) -> bool:
        """True for the merged message types introduced by MBD.3 / MBD.4."""
        return self in (MessageType.ECHO_ECHO, MessageType.READY_ECHO)


Path = Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class BrachaMessage:
    """A SEND, ECHO or READY message of Bracha's protocol.

    Parameters
    ----------
    mtype:
        One of ``SEND``, ``ECHO`` or ``READY``.
    source:
        Identifier of the process that initiated the broadcast.
    bid:
        Broadcast identifier chosen by the source (repeatable broadcasts).
    payload:
        The application payload data.
    creator:
        Identifier of the process that created this ECHO/READY.  ``None``
        on a fully connected network where the authenticated link already
        identifies the creator; required when the message is disseminated
        through Dolev's protocol with MD.1–5 enabled (Sec. 5).
    """

    mtype: MessageType
    source: int
    bid: int
    payload: bytes
    creator: Optional[int] = None

    def wire_size(self, sizes: FieldSizes = PAPER_FIELD_SIZES) -> int:
        """Number of bytes this message occupies on a link."""
        total = sizes.mtype + sizes.source + sizes.bid
        total += sizes.payload_size + len(self.payload)
        if self.creator is not None:
            total += sizes.creator_id
        return total

    @property
    def broadcast_id(self) -> Tuple[int, int]:
        """The ``(source, bid)`` pair identifying the broadcast."""
        return (self.source, self.bid)

    def with_creator(self, creator: int) -> "BrachaMessage":
        """Return a copy of this message tagged with its creator."""
        return replace(self, creator=creator)


@dataclass(frozen=True, slots=True)
class DolevMessage:
    """A content and the path of intermediary processes it traversed.

    The content is either raw application ``bytes`` (plain reliable
    communication) or a :class:`BrachaMessage` (layered Bracha-Dolev
    combination).  The path lists the identifiers of the processes the
    content has been relayed through, excluding the creator of the content
    and the receiving process.
    """

    content: Union[bytes, BrachaMessage]
    path: Path = ()

    def wire_size(self, sizes: FieldSizes = PAPER_FIELD_SIZES) -> int:
        """Number of bytes this message occupies on a link."""
        if isinstance(self.content, BrachaMessage):
            content_size = self.content.wire_size(sizes)
        else:
            content_size = sizes.mtype + sizes.source + sizes.bid
            content_size += sizes.payload_size + len(self.content)
        return content_size + sizes.path_cost(len(self.path))

    def extended(self, relay: int) -> "DolevMessage":
        """Return a copy with ``relay`` appended to the path."""
        return DolevMessage(content=self.content, path=self.path + (relay,))

    def with_empty_path(self) -> "DolevMessage":
        """Return a copy carrying an empty path (MD.2)."""
        if not self.path:
            return self
        return DolevMessage(content=self.content, path=())


@dataclass(frozen=True, slots=True)
class CrossLayerMessage:
    """A message of the cross-layer Bracha-Dolev protocol (Sec. 5–6).

    Every field except ``mtype`` is optional; a field set to ``None`` is
    not transmitted and therefore costs no bytes.  The protocol decides
    which fields to include based on the enabled modifications:

    * MBD.1 — once a neighbor knows the payload, later messages carry only
      ``local_payload_id`` instead of ``source``/``bid``/``payload``.
    * MBD.2 — SEND messages are single-hop and carry no ``path``.
    * MBD.3 / MBD.4 — ECHO_ECHO / READY_ECHO messages carry two creator
      identifiers (``creator`` and ``embedded_creator``).
    * MBD.5 — newly created ECHO/READY messages omit the ``creator`` field
      because the authenticated link identifies the sender.
    """

    mtype: MessageType
    source: Optional[int] = None
    bid: Optional[int] = None
    creator: Optional[int] = None
    embedded_creator: Optional[int] = None
    payload: Optional[bytes] = None
    local_payload_id: Optional[int] = None
    path: Optional[Path] = None
    #: Lazily memoized :meth:`wire_size` under the paper's field sizes —
    #: wire messages are interned and re-sent many times, so the size is
    #: computed once per object.  Excluded from equality, hashing, repr
    #: and ``__init__`` (so :func:`dataclasses.replace` copies start with
    #: a fresh memo); the wire encoding never reads it.
    _size_memo: Optional[int] = field(
        default=None, compare=False, repr=False, init=False
    )

    def wire_size(self, sizes: FieldSizes = PAPER_FIELD_SIZES) -> int:
        """Number of bytes this message occupies on a link."""
        if sizes is PAPER_FIELD_SIZES:
            memo = self._size_memo
            if memo is not None:
                return memo
        total = sizes.mtype
        if self.source is not None:
            total += sizes.source
        if self.bid is not None:
            total += sizes.bid
        if self.creator is not None:
            total += sizes.creator_id
        if self.embedded_creator is not None:
            total += sizes.embedded_creator_id
        if self.payload is not None:
            total += sizes.payload_size + len(self.payload)
        if self.local_payload_id is not None:
            total += sizes.local_payload_id
        if self.path is not None:
            total += sizes.path_cost(len(self.path))
        if sizes is PAPER_FIELD_SIZES:
            # Frozen dataclass: route the one-time memo store around the
            # immutability guard.
            object.__setattr__(self, "_size_memo", total)
        return total

    # ------------------------------------------------------------------
    # Convenience accessors used by the protocol implementation
    # ------------------------------------------------------------------
    @property
    def has_payload(self) -> bool:
        """True when the message carries the payload data inline."""
        return self.payload is not None

    @property
    def effective_path(self) -> Path:
        """The carried path, treating an absent path as empty."""
        return self.path if self.path is not None else ()

    def with_fields(self, **changes) -> "CrossLayerMessage":
        """Return a copy of the message with the given fields replaced."""
        return replace(self, **changes)


__all__ = [
    "MessageType",
    "Path",
    "BrachaMessage",
    "DolevMessage",
    "CrossLayerMessage",
]
