"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class ConfigurationError(ReproError):
    """A protocol or experiment was configured with inconsistent parameters."""


class SpecError(ConfigurationError):
    """A declarative scenario spec is invalid at construction time.

    Raised by the ``__post_init__`` validators of the scenario spec and
    fault-event dataclasses, so a malformed spec fails where it is
    written — not deep inside a sweep worker.  Subclasses
    :class:`ConfigurationError`: callers catching the broader class keep
    working.
    """


class TopologyError(ReproError):
    """A communication graph does not meet the protocol's requirements."""


class EncodingError(ReproError):
    """A message could not be encoded to, or decoded from, its wire format."""


class RuntimeAbort(ReproError):
    """A runtime (simulation or asyncio) had to abort an execution."""
