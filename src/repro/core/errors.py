"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class ConfigurationError(ReproError):
    """A protocol or experiment was configured with inconsistent parameters."""


class TopologyError(ReproError):
    """A communication graph does not meet the protocol's requirements."""


class EncodingError(ReproError):
    """A message could not be encoded to, or decoded from, its wire format."""


class RuntimeAbort(ReproError):
    """A runtime (simulation or asyncio) had to abort an execution."""
