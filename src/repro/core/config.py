"""Static system configuration shared by every protocol instance.

A :class:`SystemConfig` captures the assumptions of Sec. 3 of the paper:
the set of process identifiers, the maximum number ``f`` of Byzantine
processes, and the quorum sizes derived from them.  It is immutable and
shared by reference between all protocol instances of a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Tuple

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class SystemConfig:
    """System-wide parameters known by every process.

    Parameters
    ----------
    processes:
        The identifiers of the ``N`` processes of the system.  Identifiers
        are small non-negative integers; the paper assumes that every
        process knows the identifiers of all processes.
    f:
        Maximum number of Byzantine processes tolerated.  The Bracha layer
        requires ``f < N / 3`` and the Dolev layer requires the
        communication graph to be at least ``2f + 1``-vertex-connected.
    """

    processes: Tuple[int, ...]
    f: int
    _process_set: frozenset = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        processes = tuple(sorted(set(self.processes)))
        if not processes:
            raise ConfigurationError("a system needs at least one process")
        if self.f < 0:
            raise ConfigurationError(f"f must be non-negative, got {self.f}")
        if any(p < 0 for p in processes):
            raise ConfigurationError("process identifiers must be non-negative")
        object.__setattr__(self, "processes", processes)
        object.__setattr__(self, "_process_set", frozenset(processes))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_system(cls, n: int, f: int) -> "SystemConfig":
        """Build a configuration for ``n`` processes identified ``0..n-1``."""
        return cls(processes=tuple(range(n)), f=f)

    @classmethod
    def from_processes(cls, processes: Iterable[int], f: int) -> "SystemConfig":
        """Build a configuration from an explicit process identifier set."""
        return cls(processes=tuple(processes), f=f)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of processes ``N``."""
        return len(self.processes)

    @property
    def echo_quorum(self) -> int:
        """Number of ECHOs required to send a READY: ``⌈(N + f + 1) / 2⌉``."""
        return math.ceil((self.n + self.f + 1) / 2)

    @property
    def ready_amplification_threshold(self) -> int:
        """Number of READYs (``f + 1``) that lets a process send its own READY."""
        return self.f + 1

    @property
    def echo_amplification_threshold(self) -> int:
        """Number of ECHOs (``f + 1``) that lets a process send its own ECHO.

        Echo amplification is introduced by the cross-layer combination
        (Sec. 6.2); it mirrors the classic ready amplification.
        """
        return self.f + 1

    @property
    def delivery_quorum(self) -> int:
        """Number of READYs (``2f + 1``) required to BRB-deliver."""
        return 2 * self.f + 1

    @property
    def disjoint_paths_required(self) -> int:
        """Number of node-disjoint paths (``f + 1``) required to Dolev-deliver."""
        return self.f + 1

    @property
    def min_connectivity(self) -> int:
        """Minimum vertex connectivity (``2f + 1``) required of the topology."""
        return 2 * self.f + 1

    def satisfies_bracha_resilience(self) -> bool:
        """Return ``True`` when ``f < N / 3`` (Bracha's resilience bound)."""
        return 3 * self.f < self.n

    def require_bracha_resilience(self) -> None:
        """Raise :class:`ConfigurationError` unless ``f < N / 3``."""
        if not self.satisfies_bracha_resilience():
            raise ConfigurationError(
                f"Bracha's protocol requires f < N/3, got N={self.n}, f={self.f}"
            )

    def is_process(self, pid: int) -> bool:
        """Return ``True`` when ``pid`` identifies a process of the system."""
        return pid in self._process_set

    # ------------------------------------------------------------------
    # MBD.11 role assignment
    # ------------------------------------------------------------------
    def echo_generators(self, source: int) -> frozenset:
        """Processes allowed to create ECHO messages under MBD.11.

        The ``⌈(N + f + 1) / 2⌉ + f`` processes with the smallest identifiers
        after the source (modulo ``N``) generate ECHOs; the computation
        depends on the source so that the load is spread over all processes
        across broadcasts (Sec. 6.5).
        """
        return self._roles_after(source, self.echo_quorum + self.f)

    def ready_generators(self, source: int) -> frozenset:
        """Processes allowed to create READY messages under MBD.11 (``3f + 1``)."""
        return self._roles_after(source, self.delivery_quorum + self.f)

    def _roles_after(self, source: int, count: int) -> frozenset:
        ordered = self.processes
        if source not in self._process_set:
            # A Byzantine process may claim an unknown source; fall back to
            # the position it would occupy to keep the assignment total.
            start = 0
        else:
            start = ordered.index(source) + 1
        count = min(count, self.n)
        selected = [ordered[(start + i) % self.n] for i in range(count)]
        return frozenset(selected)
