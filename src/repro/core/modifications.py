"""Toggles for the MD.1–5 and MBD.1–12 protocol modifications.

The paper evaluates the impact of 17 modifications:

* MD.1–5 — Bonomi et al.'s optimizations of Dolev's reliable communication
  protocol (Sec. 4.2).  The combination of Bracha's protocol with a Dolev
  layer optimized with MD.1–5 is the state-of-the-art baseline, *BDopt*.
* MBD.1–12 — the paper's new modifications of the Bracha-Dolev
  combination (Sec. 6), some cross-layer.

:class:`ModificationSet` holds one boolean per modification and provides
the named presets used throughout the evaluation: the *lat.*, *bdw.* and
*lat. & bdw.* composite configurations of Sec. 7.4, and per-modification
variants used by the Table 1 and Fig. 7–10 reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Tuple


@dataclass(frozen=True)
class ModificationSet:
    """Enabled protocol modifications.

    Each attribute corresponds to one modification of Table 2 of the
    paper.  The defaults (everything disabled) describe the unmodified
    layered Bracha-Dolev combination.
    """

    # --- Bonomi et al.'s Dolev optimizations (MD.1-5) -----------------
    md1_deliver_from_source: bool = False
    md2_empty_path_after_delivery: bool = False
    md3_skip_delivered_neighbors: bool = False
    md4_ignore_paths_with_delivered: bool = False
    md5_stop_after_delivery: bool = False

    # --- the paper's Bracha-Dolev modifications (MBD.1-12) ------------
    mbd1_local_payload_ids: bool = False
    mbd2_single_hop_send: bool = False
    mbd3_echo_echo: bool = False
    mbd4_ready_echo: bool = False
    mbd5_optional_fields: bool = False
    mbd6_ignore_echo_after_ready: bool = False
    mbd7_ignore_echo_after_delivery: bool = False
    mbd8_skip_echo_to_ready_neighbors: bool = False
    mbd9_skip_delivered_neighbors: bool = False
    mbd10_ignore_superpaths: bool = False
    mbd11_role_restriction: bool = False
    mbd12_reduced_fanout: bool = False

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "ModificationSet":
        """The unmodified Bracha-Dolev combination (plain *BD*)."""
        return cls()

    @classmethod
    def dolev_optimized(cls) -> "ModificationSet":
        """Only MD.1–5 enabled — the *BDopt* baseline of the paper."""
        return cls(
            md1_deliver_from_source=True,
            md2_empty_path_after_delivery=True,
            md3_skip_delivered_neighbors=True,
            md4_ignore_paths_with_delivered=True,
            md5_stop_after_delivery=True,
        )

    # ``bdopt`` is the name used throughout the paper's evaluation.
    bdopt = dolev_optimized

    @classmethod
    def bdopt_with_mbd1(cls) -> "ModificationSet":
        """*BDopt* plus MBD.1, the reference point for MBD.2–12 in Table 1."""
        return cls.dolev_optimized().with_enabled("mbd1_local_payload_ids")

    @classmethod
    def all_enabled(cls) -> "ModificationSet":
        """Every modification enabled."""
        values = {f.name: True for f in fields(cls)}
        return cls(**values)

    @classmethod
    def latency_optimized(cls) -> "ModificationSet":
        """The *lat.* configuration of Sec. 7.4.

        Contains the modifications whose median impact decreases latency
        (Fig. 9): MBD.1, MBD.2, MBD.7, MBD.8 and MBD.9, on top of MD.1–5.
        """
        return cls.dolev_optimized().with_enabled(
            "mbd1_local_payload_ids",
            "mbd2_single_hop_send",
            "mbd7_ignore_echo_after_delivery",
            "mbd8_skip_echo_to_ready_neighbors",
            "mbd9_skip_delivered_neighbors",
        )

    @classmethod
    def bandwidth_optimized(cls) -> "ModificationSet":
        """The *bdw.* configuration of Sec. 7.4.

        Contains the modifications whose median impact decreases network
        consumption (Fig. 7): MBD.1, MBD.7, MBD.8, MBD.9 and MBD.11, on
        top of MD.1–5.
        """
        return cls.dolev_optimized().with_enabled(
            "mbd1_local_payload_ids",
            "mbd7_ignore_echo_after_delivery",
            "mbd8_skip_echo_to_ready_neighbors",
            "mbd9_skip_delivered_neighbors",
            "mbd11_role_restriction",
        )

    @classmethod
    def latency_and_bandwidth_optimized(cls) -> "ModificationSet":
        """The *lat. & bdw.* configuration of Sec. 7.4.

        Contains the modifications that decrease both latency and network
        consumption: MBD.1, MBD.7, MBD.8 and MBD.9, on top of MD.1–5.
        """
        return cls.dolev_optimized().with_enabled(
            "mbd1_local_payload_ids",
            "mbd7_ignore_echo_after_delivery",
            "mbd8_skip_echo_to_ready_neighbors",
            "mbd9_skip_delivered_neighbors",
        )

    @classmethod
    def single_mbd(cls, index: int, *, with_mbd1: bool = True) -> "ModificationSet":
        """BDopt plus a single MBD modification, as evaluated in Table 1.

        Parameters
        ----------
        index:
            The MBD modification number, 1–12.
        with_mbd1:
            When true (the default, matching the paper), MBD.2–12 variants
            also enable MBD.1 because Table 1 reports their impact relative
            to BDopt + MBD.1.
        """
        name = _MBD_FIELDS.get(index)
        if name is None:
            raise ValueError(f"unknown MBD modification index: {index}")
        base = cls.dolev_optimized()
        if with_mbd1 and index != 1:
            base = base.with_enabled("mbd1_local_payload_ids")
        return base.with_enabled(name)

    # ------------------------------------------------------------------
    # Manipulation helpers
    # ------------------------------------------------------------------
    def with_enabled(self, *names: str) -> "ModificationSet":
        """Return a copy with the given modification attributes enabled."""
        changes = {}
        valid = {f.name for f in fields(self)}
        for name in names:
            if name not in valid:
                raise ValueError(f"unknown modification: {name}")
            changes[name] = True
        return replace(self, **changes)

    def with_disabled(self, *names: str) -> "ModificationSet":
        """Return a copy with the given modification attributes disabled."""
        changes = {}
        valid = {f.name for f in fields(self)}
        for name in names:
            if name not in valid:
                raise ValueError(f"unknown modification: {name}")
            changes[name] = False
        return replace(self, **changes)

    def enabled_names(self) -> Tuple[str, ...]:
        """Names of the enabled modifications, in declaration order."""
        return tuple(f.name for f in fields(self) if getattr(self, f.name))

    def enabled_mbd_indices(self) -> Tuple[int, ...]:
        """Indices (1–12) of the enabled MBD modifications."""
        return tuple(
            index for index, name in _MBD_FIELDS.items() if getattr(self, name)
        )

    def as_dict(self) -> Dict[str, bool]:
        """Return a plain dictionary view of the modification toggles."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "ModificationSet":
        """Build a set from an iterable of enabled modification names."""
        return cls().with_enabled(*names)

    def describe(self) -> str:
        """Short human-readable description, e.g. ``"MD.1-5 + MBD.1/7"``."""
        md = [i for i, n in _MD_FIELDS.items() if getattr(self, n)]
        mbd = self.enabled_mbd_indices()
        parts = []
        if md:
            parts.append("MD." + "/".join(str(i) for i in md))
        if mbd:
            parts.append("MBD." + "/".join(str(i) for i in mbd))
        return " + ".join(parts) if parts else "unmodified"


_MD_FIELDS = {
    1: "md1_deliver_from_source",
    2: "md2_empty_path_after_delivery",
    3: "md3_skip_delivered_neighbors",
    4: "md4_ignore_paths_with_delivered",
    5: "md5_stop_after_delivery",
}

_MBD_FIELDS = {
    1: "mbd1_local_payload_ids",
    2: "mbd2_single_hop_send",
    3: "mbd3_echo_echo",
    4: "mbd4_ready_echo",
    5: "mbd5_optional_fields",
    6: "mbd6_ignore_echo_after_ready",
    7: "mbd7_ignore_echo_after_delivery",
    8: "mbd8_skip_echo_to_ready_neighbors",
    9: "mbd9_skip_delivered_neighbors",
    10: "mbd10_ignore_superpaths",
    11: "mbd11_role_restriction",
    12: "mbd12_reduced_fanout",
}

#: Mapping from MBD index to attribute name, exported for the benchmarks.
MBD_FIELD_NAMES = dict(_MBD_FIELDS)

#: Mapping from MD index to attribute name.
MD_FIELD_NAMES = dict(_MD_FIELDS)


__all__ = ["ModificationSet", "MBD_FIELD_NAMES", "MD_FIELD_NAMES"]
