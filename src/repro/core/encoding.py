"""Compact binary codec for the protocol messages.

The asyncio runtime (and the codec round-trip tests) use this module to
serialize messages to bytes and back.  The encoding mirrors the field
layout of Table 3: a one-byte message-kind tag, a one-byte presence
bitmask for optional fields, then the present fields using fixed-width
big-endian integers.  The encoding is self-describing enough to decode
without knowing which modifications the emitting protocol had enabled.
"""

from __future__ import annotations

import struct
from typing import Tuple, Union

from repro.core.errors import EncodingError
from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)

_KIND_BRACHA = 1
_KIND_DOLEV_RAW = 2
_KIND_DOLEV_BRACHA = 3
_KIND_CROSS_LAYER = 4

_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")

AnyMessage = Union[BrachaMessage, DolevMessage, CrossLayerMessage]


def _pack_u32(value: int) -> bytes:
    if value < 0 or value > 0xFFFFFFFF:
        raise EncodingError(f"value {value} does not fit in 32 bits")
    return _U32.pack(value)


def _pack_path(path: Tuple[int, ...]) -> bytes:
    if len(path) > 0xFFFF:
        raise EncodingError("path too long to encode")
    return _U16.pack(len(path)) + b"".join(_pack_u32(p) for p in path)


def _unpack_path(data: bytes, offset: int) -> Tuple[Tuple[int, ...], int]:
    (count,) = _U16.unpack_from(data, offset)
    offset += _U16.size
    path = []
    for _ in range(count):
        (value,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        path.append(value)
    return tuple(path), offset


def _pack_payload(payload: bytes) -> bytes:
    return _pack_u32(len(payload)) + payload


def _unpack_payload(data: bytes, offset: int) -> Tuple[bytes, int]:
    (length,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    payload = bytes(data[offset : offset + length])
    if len(payload) != length:
        raise EncodingError("truncated payload")
    return payload, offset + length


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_message(message: AnyMessage) -> bytes:
    """Serialize a protocol message to bytes."""
    if isinstance(message, BrachaMessage):
        return bytes([_KIND_BRACHA]) + _encode_bracha(message)
    if isinstance(message, DolevMessage):
        if isinstance(message.content, BrachaMessage):
            body = _encode_bracha(message.content)
            kind = _KIND_DOLEV_BRACHA
        else:
            body = _pack_payload(message.content)
            kind = _KIND_DOLEV_RAW
        return bytes([kind]) + body + _pack_path(message.path)
    if isinstance(message, CrossLayerMessage):
        return bytes([_KIND_CROSS_LAYER]) + _encode_cross_layer(message)
    raise EncodingError(f"cannot encode object of type {type(message).__name__}")


def _encode_bracha(message: BrachaMessage) -> bytes:
    has_creator = message.creator is not None
    parts = [
        bytes([int(message.mtype), 1 if has_creator else 0]),
        _pack_u32(message.source),
        _pack_u32(message.bid),
    ]
    if has_creator:
        parts.append(_pack_u32(message.creator))
    parts.append(_pack_payload(message.payload))
    return b"".join(parts)


_CL_SOURCE = 1 << 0
_CL_BID = 1 << 1
_CL_CREATOR = 1 << 2
_CL_EMBEDDED = 1 << 3
_CL_PAYLOAD = 1 << 4
_CL_LOCAL_ID = 1 << 5
_CL_PATH = 1 << 6


def _encode_cross_layer(message: CrossLayerMessage) -> bytes:
    mask = 0
    parts = []
    if message.source is not None:
        mask |= _CL_SOURCE
        parts.append(_pack_u32(message.source))
    if message.bid is not None:
        mask |= _CL_BID
        parts.append(_pack_u32(message.bid))
    if message.creator is not None:
        mask |= _CL_CREATOR
        parts.append(_pack_u32(message.creator))
    if message.embedded_creator is not None:
        mask |= _CL_EMBEDDED
        parts.append(_pack_u32(message.embedded_creator))
    if message.payload is not None:
        mask |= _CL_PAYLOAD
        parts.append(_pack_payload(message.payload))
    if message.local_payload_id is not None:
        mask |= _CL_LOCAL_ID
        parts.append(_pack_u32(message.local_payload_id))
    if message.path is not None:
        mask |= _CL_PATH
        parts.append(_pack_path(message.path))
    return bytes([int(message.mtype), mask]) + b"".join(parts)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode_message(data: bytes) -> AnyMessage:
    """Deserialize a message previously produced by :func:`encode_message`."""
    if not data:
        raise EncodingError("empty buffer")
    kind = data[0]
    body = data[1:]
    try:
        if kind == _KIND_BRACHA:
            message, offset = _decode_bracha(body, 0)
            _require_consumed(body, offset)
            return message
        if kind in (_KIND_DOLEV_RAW, _KIND_DOLEV_BRACHA):
            if kind == _KIND_DOLEV_BRACHA:
                content, offset = _decode_bracha(body, 0)
            else:
                content, offset = _unpack_payload(body, 0)
            path, offset = _unpack_path(body, offset)
            _require_consumed(body, offset)
            return DolevMessage(content=content, path=path)
        if kind == _KIND_CROSS_LAYER:
            message, offset = _decode_cross_layer(body, 0)
            _require_consumed(body, offset)
            return message
    except struct.error as exc:
        raise EncodingError(f"truncated message: {exc}") from exc
    raise EncodingError(f"unknown message kind tag: {kind}")


def _require_consumed(data: bytes, offset: int) -> None:
    if offset != len(data):
        raise EncodingError(
            f"trailing bytes after message: consumed {offset} of {len(data)}"
        )


def _decode_bracha(data: bytes, offset: int) -> Tuple[BrachaMessage, int]:
    mtype = MessageType(data[offset])
    has_creator = bool(data[offset + 1])
    offset += 2
    (source,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    (bid,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    creator = None
    if has_creator:
        (creator,) = _U32.unpack_from(data, offset)
        offset += _U32.size
    payload, offset = _unpack_payload(data, offset)
    return (
        BrachaMessage(mtype=mtype, source=source, bid=bid, payload=payload, creator=creator),
        offset,
    )


def _decode_cross_layer(data: bytes, offset: int) -> Tuple[CrossLayerMessage, int]:
    mtype = MessageType(data[offset])
    mask = data[offset + 1]
    offset += 2
    values = {}
    if mask & _CL_SOURCE:
        (values["source"],) = _U32.unpack_from(data, offset)
        offset += _U32.size
    if mask & _CL_BID:
        (values["bid"],) = _U32.unpack_from(data, offset)
        offset += _U32.size
    if mask & _CL_CREATOR:
        (values["creator"],) = _U32.unpack_from(data, offset)
        offset += _U32.size
    if mask & _CL_EMBEDDED:
        (values["embedded_creator"],) = _U32.unpack_from(data, offset)
        offset += _U32.size
    if mask & _CL_PAYLOAD:
        values["payload"], offset = _unpack_payload(data, offset)
    if mask & _CL_LOCAL_ID:
        (values["local_payload_id"],) = _U32.unpack_from(data, offset)
        offset += _U32.size
    if mask & _CL_PATH:
        values["path"], offset = _unpack_path(data, offset)
    return CrossLayerMessage(mtype=mtype, **values), offset


__all__ = ["encode_message", "decode_message", "AnyMessage"]
