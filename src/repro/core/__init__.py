"""Core abstractions shared by every protocol and substrate.

This package contains the process/message/event model used across the
library:

* :mod:`repro.core.messages` — wire messages for Bracha, Dolev and the
  cross-layer Bracha-Dolev protocol, with byte-accurate size accounting
  following Table 3 of the paper.
* :mod:`repro.core.events` — the commands and events exchanged between a
  protocol and the runtime hosting it (sans-io style).
* :mod:`repro.core.protocol` — the abstract protocol interface implemented
  by every broadcast protocol in :mod:`repro.brb`.
* :mod:`repro.core.config` — static system configuration (process set,
  fault threshold, quorum sizes).
* :mod:`repro.core.modifications` — the MD.1–5 and MBD.1–12 toggles and the
  named presets used in the paper's evaluation.
* :mod:`repro.core.encoding` — a compact binary codec for the messages,
  used by the asyncio runtime and by the codec round-trip tests.
"""

from repro.core.config import SystemConfig
from repro.core.events import BRBDeliver, Command, SendTo
from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)
from repro.core.modifications import ModificationSet
from repro.core.protocol import BroadcastProtocol

__all__ = [
    "SystemConfig",
    "Command",
    "SendTo",
    "BRBDeliver",
    "MessageType",
    "BrachaMessage",
    "DolevMessage",
    "CrossLayerMessage",
    "ModificationSet",
    "BroadcastProtocol",
]
