"""Message field sizes used for network-consumption accounting.

The values reproduce Table 3 of the paper ("Description and size of the
message fields" of the C++ implementation).  Network consumption reported
by the benchmarks is the sum, over every message put on a link, of the
sizes of the fields that the message actually carries.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FieldSizes:
    """Size in bytes of each message field (Table 3).

    Attributes
    ----------
    mtype:
        Message type tag.
    source:
        Identifier ``s`` of the source process of a broadcast.
    bid:
        Broadcast identifier (sequence number).
    local_payload_id:
        Local identifier used instead of the payload under MBD.1.
    payload_size:
        Length prefix of the payload data.
    creator_id:
        ``erId1`` — identifier of the process that created an ECHO/READY.
    embedded_creator_id:
        ``erId2`` — identifier embedded in ECHO_ECHO / READY_ECHO messages.
    path_length:
        Length prefix of the path (number of process identifiers).
    path_entry:
        Size of each process identifier carried in a path.
    """

    mtype: int = 1
    source: int = 4
    bid: int = 4
    local_payload_id: int = 4
    payload_size: int = 4
    creator_id: int = 4
    embedded_creator_id: int = 4
    path_length: int = 2
    path_entry: int = 4

    def path_cost(self, hop_count: int) -> int:
        """Bytes used to encode a path of ``hop_count`` process identifiers."""
        return self.path_length + self.path_entry * hop_count


#: Field sizes of the paper's reference implementation (Table 3).
PAPER_FIELD_SIZES = FieldSizes()
