"""Commands and events exchanged between protocols and runtimes.

Protocols in :mod:`repro.brb` are written *sans-io*: they never touch a
socket or a scheduler.  Every entry point (``on_start``, ``broadcast``,
``on_message``) returns a list of :class:`Command` objects describing what
the hosting runtime should do — put a message on an authenticated link
(:class:`SendTo`) or hand a payload to the application
(:class:`BRBDeliver` / :class:`RCDeliver`).  Both the discrete-event
simulation runtime and the asyncio runtime interpret the same commands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union


@dataclass(slots=True, unsafe_hash=True)
class SendTo:
    """Ask the runtime to send ``message`` to neighbor ``dest``.

    The link between the emitting process and ``dest`` is assumed to be an
    authenticated, reliable point-to-point channel (Sec. 3).

    Not ``frozen``: a frozen dataclass routes every ``__init__`` store
    through ``object.__setattr__``, which roughly doubles construction
    cost, and this is the one command allocated per link transmission.
    Treat instances as immutable regardless.
    """

    dest: int
    message: Any


@dataclass(frozen=True, slots=True)
class BRBDeliver:
    """Byzantine-reliable-broadcast delivery of a payload to the application.

    ``source`` and ``bid`` identify the broadcast; all correct processes
    delivering the same ``(source, bid)`` deliver the same ``payload``
    (BRB-Agreement).
    """

    source: int
    bid: int
    payload: bytes


@dataclass(frozen=True, slots=True)
class RCDeliver:
    """Reliable-communication delivery (honest-dealer broadcast).

    Emitted by the Dolev layer.  ``source`` may be ``None`` for raw
    contents whose originator is not encoded in the payload.
    """

    payload: Any
    source: Optional[int] = None


Command = Union[SendTo, BRBDeliver, RCDeliver]


@dataclass(frozen=True, slots=True)
class Observation:
    """One protocol event observed by a hosting runtime.

    Emitted by both runtimes to registered observers (the scenario
    engine's adaptive-fault controller): ``kind`` is ``"send"`` for a
    message put on a link and ``"deliver"`` for an application-level
    delivery.  ``time_ms`` is simulated milliseconds on the simulation
    runtime and epoch-relative wall-clock milliseconds on the asyncio
    runtime.  Fields that do not apply to the event kind (``dest`` and
    ``mtype`` for deliveries) or that the message does not carry are
    ``None``.
    """

    kind: str
    time_ms: float
    pid: int
    dest: Optional[int] = None
    mtype: Optional[str] = None
    source: Optional[int] = None
    bid: Optional[int] = None


def sends(commands) -> Tuple[SendTo, ...]:
    """Return only the :class:`SendTo` commands of a command list."""
    return tuple(c for c in commands if isinstance(c, SendTo))


def deliveries(commands) -> Tuple[Union[BRBDeliver, RCDeliver], ...]:
    """Return only the delivery commands of a command list."""
    return tuple(c for c in commands if isinstance(c, (BRBDeliver, RCDeliver)))


__all__ = [
    "SendTo",
    "BRBDeliver",
    "RCDeliver",
    "Command",
    "Observation",
    "sends",
    "deliveries",
]
