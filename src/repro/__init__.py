"""Practical Byzantine Reliable Broadcast on Partially Connected Networks.

A faithful Python reproduction of the protocols and evaluation of
Bonomi, Decouchant, Farina, Rahli and Tixeuil (ICDCS 2021): Byzantine
reliable broadcast (BRB) on authenticated, partially connected networks,
obtained by combining Bracha's double-echo broadcast with Dolev's
reliable communication and optimizing the combination with the MD.1–5
and MBD.1–12 modifications.

Quickstart
----------
>>> from repro import (SystemConfig, ModificationSet, CrossLayerBrachaDolev,
...                    SimulatedNetwork, random_regular_topology)
>>> config = SystemConfig.for_system(10, 1)
>>> topology = random_regular_topology(10, 4, seed=1, min_connectivity=3)
>>> protocols = {
...     pid: CrossLayerBrachaDolev(pid, config, sorted(topology.neighbors(pid)))
...     for pid in topology.nodes
... }
>>> network = SimulatedNetwork(topology, protocols, seed=1)
>>> network.broadcast(0, b"hello", bid=0)
>>> metrics = network.run()
>>> len(metrics.deliveries_for((0, 0)))
10
"""

from repro.core.config import SystemConfig
from repro.core.events import BRBDeliver, RCDeliver, SendTo
from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)
from repro.core.modifications import ModificationSet
from repro.core.sizes import FieldSizes, PAPER_FIELD_SIZES
from repro.brb.bracha import BrachaBroadcast
from repro.brb.bracha_dolev import BrachaDolevBroadcast
from repro.brb.cpa import BrachaCPABroadcast, CPABroadcast
from repro.brb.dolev import DolevBroadcast, OptimizedDolevBroadcast
from repro.brb.dolev_routed import RoutedDolevBroadcast
from repro.brb.optimized import CrossLayerBrachaDolev
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.network.simulation.delays import (
    AsynchronousDelay,
    BurstyLossWindow,
    FixedDelay,
    LossyDelay,
    UniformDelay,
)
from repro.network.simulation.network import SimulatedNetwork
from repro.runner.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.runner.parallel import SweepExecutor, run_sweep
from repro.scenarios import (
    AdversarySpec,
    AsyncioBackend,
    BroadcastOutcome,
    BroadcastSpec,
    ConformanceReport,
    CrashAt,
    CrashWhen,
    CutLinkWhen,
    DelayedStart,
    DelaySpec,
    LinkDropWindow,
    ObservationFilter,
    SafetyVerdict,
    ScenarioBackend,
    ScenarioResult,
    ScenarioSpec,
    SimulationBackend,
    TopologySpec,
    TurnByzantineWhen,
    WorkloadSpec,
    assert_safe,
    check_result,
    expand_grid,
    get_backend,
    run_conformance,
    run_scenario,
    sample_lossy_adaptive_specs,
    seed_cells,
)
from repro.topology.generators import (
    Topology,
    complete_topology,
    harary_topology,
    random_regular_topology,
    ring_topology,
    torus_topology,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SystemConfig",
    "ModificationSet",
    "FieldSizes",
    "PAPER_FIELD_SIZES",
    # messages and events
    "MessageType",
    "BrachaMessage",
    "DolevMessage",
    "CrossLayerMessage",
    "SendTo",
    "BRBDeliver",
    "RCDeliver",
    # protocols
    "BrachaBroadcast",
    "DolevBroadcast",
    "OptimizedDolevBroadcast",
    "RoutedDolevBroadcast",
    "CPABroadcast",
    "BrachaCPABroadcast",
    "BrachaDolevBroadcast",
    "CrossLayerBrachaDolev",
    # topologies
    "Topology",
    "random_regular_topology",
    "complete_topology",
    "harary_topology",
    "ring_topology",
    "torus_topology",
    # runtime and metrics
    "SimulatedNetwork",
    "FixedDelay",
    "AsynchronousDelay",
    "UniformDelay",
    "LossyDelay",
    "BurstyLossWindow",
    "MetricsCollector",
    "RunMetrics",
    # experiments
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    # scenarios and sweeps
    "ScenarioSpec",
    "TopologySpec",
    "DelaySpec",
    "AdversarySpec",
    "BroadcastSpec",
    "WorkloadSpec",
    "CrashAt",
    "LinkDropWindow",
    "DelayedStart",
    "ObservationFilter",
    "CrashWhen",
    "TurnByzantineWhen",
    "CutLinkWhen",
    "ScenarioResult",
    "BroadcastOutcome",
    "run_scenario",
    "expand_grid",
    "seed_cells",
    "SweepExecutor",
    "run_sweep",
    # execution backends and conformance
    "ScenarioBackend",
    "SimulationBackend",
    "AsyncioBackend",
    "get_backend",
    "ConformanceReport",
    "SafetyVerdict",
    "run_conformance",
    # safety oracle
    "assert_safe",
    "check_result",
    "sample_lossy_adaptive_specs",
]
