"""Causally-ordered reliable broadcast (RCO) stacked on BRB.

The paper's cross-layer Bracha–Dolev stack stops at reliable broadcast;
this package layers vector-clock causal order on top of exactly that
primitive.  :class:`~repro.rco.protocol.CausalOrderBroadcast` wraps any
BRB implementation through the sans-io protocol interface, so the same
wrapper runs unchanged on the discrete-event simulator and the asyncio
TCP runtime; :mod:`repro.rco.causal` provides the trace-level causal
delivery predicate the safety oracle and the cross-backend conformance
verdicts assert.
"""

from repro.rco.causal import (
    causal_dependencies,
    causal_order_holds,
    causal_order_violations,
)
from repro.rco.protocol import (
    RCO_PROTOCOLS,
    CausalOrderBroadcast,
    decode_rco_envelope,
    encode_rco_envelope,
)

__all__ = [
    "RCO_PROTOCOLS",
    "CausalOrderBroadcast",
    "encode_rco_envelope",
    "decode_rco_envelope",
    "causal_dependencies",
    "causal_order_violations",
    "causal_order_holds",
]
