"""Trace-level causal delivery predicate for RCO scenario runs.

The wrapper of :mod:`repro.rco.protocol` promises *causal order*: if the
sender of broadcast ``B`` had RCO-delivered broadcast ``A`` before
sending ``B``, then no correct process delivers ``B`` without having
delivered ``A`` first.  This module checks that promise against the
recorded delivery trace of one scenario run, using only facts the trace
itself proves:

* **same-source FIFO** — two broadcasts by the same *correct* source are
  causally ordered by their schedule (the sender's send counter embeds
  the order in the clock), so every correct process must deliver them in
  schedule order;
* **cross-source chains** — broadcast ``A`` precedes ``B`` from a
  different *correct* source when the trace shows ``B``'s source
  delivered ``A`` strictly before ``B``'s nominal start time.  Both
  backends initiate a broadcast no earlier than its nominal start (the
  asyncio runtime's wall-clock scheduling can only be late), so a
  delivery timestamped before the nominal start happened before the
  send — a sound under-approximation of the true causal past.

Both dependency families are restricted to broadcasts whose sources the
run reports as correct: a Byzantine source may stamp arbitrary clocks,
so no ordering promise exists for its traffic.  The predicate is
loss-tolerant by construction — it only constrains processes that
actually delivered the later broadcast — so the oracle asserts it
unconditionally for RCO specs, lossy and adaptive cells included.

The check reads per-process delivery *order* from the insertion order of
``result.metrics.delivery_times`` (deliveries are recorded in the order
they happen on both backends), never from timestamp comparisons, so
wall-clock jitter cannot produce false positives.

This module deliberately imports nothing from :mod:`repro.scenarios`:
the oracle and the conformance verdicts both build on it, so it sits
below them in the import graph.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.rco.protocol import RCO_PROTOCOLS

#: A broadcast key, as used by the metrics layer.
Key = Tuple[int, int]


def is_rco_result(result) -> bool:
    """Whether ``result`` ran an RCO protocol (the predicate's scope)."""
    return result.spec.protocol in RCO_PROTOCOLS


def causal_dependencies(result) -> List[Tuple[Key, Key]]:
    """Provable ``(earlier, later)`` broadcast pairs of one run.

    Only dependencies between broadcasts of *correct* sources are
    emitted; see the module docstring for the two families.
    """
    correct = set(result.correct_processes)
    schedule = [
        broadcast
        for broadcast in result.spec.broadcasts()
        if broadcast.source in correct
    ]
    dependencies: List[Tuple[Key, Key]] = []

    last_by_source: Dict[int, Key] = {}
    for broadcast in schedule:
        previous = last_by_source.get(broadcast.source)
        if previous is not None:
            dependencies.append((previous, broadcast.key))
        last_by_source[broadcast.source] = broadcast.key

    delivery_times = result.metrics.delivery_times
    for later in schedule:
        for earlier in schedule:
            if earlier.source == later.source:
                continue
            delivered_at = delivery_times.get((later.source, earlier.key))
            if delivered_at is not None and delivered_at < later.start_time_ms:
                dependencies.append((earlier.key, later.key))
    return dependencies


def causal_order_violations(result) -> List[str]:
    """Causal-order breaches of one run, as human-readable details.

    Empty list = every correct process delivered in causal order.
    """
    correct = set(result.correct_processes)
    order: Dict[int, Dict[Key, int]] = {}
    for position, (pid, key) in enumerate(result.metrics.delivery_times):
        order.setdefault(pid, {})[key] = position

    problems: List[str] = []
    for earlier, later in causal_dependencies(result):
        for pid in sorted(correct):
            positions = order.get(pid, {})
            if later not in positions:
                continue
            if earlier not in positions:
                problems.append(
                    f"process {pid} delivered {later} without its causal "
                    f"predecessor {earlier}"
                )
            elif positions[earlier] > positions[later]:
                problems.append(
                    f"process {pid} delivered {later} before its causal "
                    f"predecessor {earlier}"
                )
    return problems


def causal_order_holds(result) -> bool:
    """Loss-tolerant causal-order verdict (vacuously true off RCO)."""
    if not is_rco_result(result):
        return True
    return not causal_order_violations(result)


__all__ = [
    "Key",
    "is_rco_result",
    "causal_dependencies",
    "causal_order_violations",
    "causal_order_holds",
]
