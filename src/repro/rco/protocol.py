"""Vector-clock causally-ordered broadcast stacked on any BRB protocol.

:class:`CausalOrderBroadcast` wraps an inner Byzantine reliable
broadcast instance through the sans-io protocol interface: application
payloads are enveloped with the sender's vector clock before the inner
``broadcast``, and the inner layer's ``BRBDeliver`` commands are
intercepted into a pending set that releases deliveries only when their
causal dependencies are satisfied — the classic pending-set delivery
rule of causally-ordered reliable broadcast (RCO):

* the sender stamps message ``m`` with clock ``W`` where ``W[self]`` is
  the number of messages it *sent* before ``m`` (not delivered — a
  source may broadcast twice before BRB-delivering its own first
  message) and ``W[k]`` is the number of messages it RCO-delivered from
  ``k``;
* a process holding delivery vector ``V`` delivers ``m`` from ``j``
  exactly when ``W[j] == V[j]`` and ``W[k] <= V[k]`` for every
  ``k != j``, then increments ``V[j]`` and re-scans the pending set.

Because the inner layer is a *reliable* broadcast, every correct process
sees the same envelope for a given ``(source, bid)`` (BRB-Agreement), so
all correct processes take identical pending-set decisions.  A malformed
envelope — a Byzantine source bypassing the wrapper — is discarded
deterministically by every correct process, which preserves agreement
and validity vacuously (BRB never promises totality for Byzantine
sources).

The wrapper subclasses :class:`~repro.core.protocol.BroadcastProtocol`,
so the hosting runtimes, the metrics layer and the adversary machinery
treat it exactly like any other protocol; the ``BRBDeliver`` commands it
emits carry the decoded *application* payload, never the envelope bytes.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.events import BRBDeliver, Command
from repro.core.protocol import BroadcastProtocol

#: RCO protocol names → the inner BRB protocol family they stack on.
#: The keys are valid :class:`~repro.scenarios.spec.ScenarioSpec`
#: ``protocol`` values (a grid axis); the values are what
#: :func:`~repro.runner.configs.protocol_factory` builds underneath.
RCO_PROTOCOLS = {
    "rco_cross_layer": "cross_layer",
    "rco_bracha_dolev": "bracha_dolev",
    "rco_bracha": "bracha",
}

#: Envelope magic: version-tagged so a future clock encoding can coexist
#: with stored corpus payload expectations.
_MAGIC = b"RCO1"

_LEN = struct.Struct(">I")


def encode_rco_envelope(clock: Sequence[int], payload: bytes) -> bytes:
    """Pack ``payload`` behind the sender's vector ``clock``."""
    n = len(clock)
    return _MAGIC + _LEN.pack(n) + struct.pack(f">{n}I", *clock) + payload


def decode_rco_envelope(
    data: bytes, n: int
) -> Optional[Tuple[Tuple[int, ...], bytes]]:
    """Unpack an envelope into ``(clock, payload)``.

    Returns ``None`` for anything malformed — wrong magic, truncated
    clock, or a clock whose length is not the system size ``n`` — so a
    Byzantine payload that bypassed the wrapper is rejected identically
    by every correct process.
    """
    header = len(_MAGIC) + _LEN.size
    if len(data) < header or not data.startswith(_MAGIC):
        return None
    (length,) = _LEN.unpack_from(data, len(_MAGIC))
    if length != n or len(data) < header + n * 4:
        return None
    clock = struct.unpack_from(f">{n}I", data, header)
    return clock, data[header + n * 4 :]


class CausalOrderBroadcast(BroadcastProtocol):
    """Causal-order wrapper around one inner BRB protocol instance.

    Parameters
    ----------
    inner:
        The wrapped BRB instance for the *same* process — anything
        implementing the sans-io protocol interface.  The wrapper
        forwards ``on_start``/``broadcast``/``on_message`` to it and
        filters the returned commands: ``SendTo`` passes through
        untouched, inner ``BRBDeliver`` feeds the pending set.
    """

    __slots__ = ("inner", "clock", "pending", "_sent")

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Sequence[int],
        *,
        inner: BroadcastProtocol,
    ) -> None:
        super().__init__(process_id, config, neighbors)
        if config.processes != tuple(range(config.n)):
            # The vector clock indexes by process id.
            raise ConfigurationError(
                "CausalOrderBroadcast needs dense process ids 0..n-1, "
                f"got {config.processes}"
            )
        if getattr(inner, "process_id", process_id) != process_id:
            raise ConfigurationError(
                f"inner protocol belongs to process {inner.process_id}, "
                f"not {process_id}"
            )
        self.inner = inner
        #: ``clock[k]`` — messages RCO-delivered from process ``k``.
        self.clock: List[int] = [0] * config.n
        #: Undeliverable decoded envelopes: key → (clock, app payload).
        self.pending: dict = {}
        self._sent = 0

    # ------------------------------------------------------------------
    # Protocol entry points (forward to the inner layer, filter output)
    # ------------------------------------------------------------------
    def on_start(self) -> List[Command]:
        return self._filter(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        stamp = list(self.clock)
        stamp[self.process_id] = self._sent
        self._sent += 1
        envelope = encode_rco_envelope(stamp, payload)
        return self._filter(self.inner.broadcast(envelope, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._filter(self.inner.on_message(sender, message))

    # ------------------------------------------------------------------
    # Pending-set delivery rule
    # ------------------------------------------------------------------
    def _deliverable(self, source: int, stamp: Sequence[int]) -> bool:
        if stamp[source] != self.clock[source]:
            return False
        return all(
            stamp[k] <= self.clock[k]
            for k in range(len(stamp))
            if k != source
        )

    def _filter(self, commands: List[Command]) -> List[Command]:
        out: List[Command] = []
        for command in commands:
            if not isinstance(command, BRBDeliver):
                out.append(command)
                continue
            decoded = decode_rco_envelope(command.payload, self.config.n)
            if decoded is None:
                # Not a wrapper envelope: the source bypassed RCO.
                # BRB-Agreement makes every correct process discard the
                # same bytes, so dropping it here is itself agreed upon.
                continue
            stamp, payload = decoded
            key = (command.source, command.bid)
            if key not in self.delivered and key not in self.pending:
                self.pending[key] = (stamp, payload)
        out.extend(self._drain())
        return out

    def _drain(self) -> List[Command]:
        """Release every pending message whose dependencies are met.

        Ties between independently deliverable messages break on the
        ``(source, bid)`` key, so the drain order — and therefore the
        recorded delivery order — is identical on every backend.
        """
        released: List[Command] = []
        progressed = True
        while progressed:
            progressed = False
            for key in sorted(self.pending):
                stamp, payload = self.pending[key]
                if self._deliverable(key[0], stamp):
                    del self.pending[key]
                    self.clock[key[0]] += 1
                    released.append(
                        self._record_delivery(key[0], key[1], payload)
                    )
                    progressed = True
                    break
        return released


__all__ = [
    "RCO_PROTOCOLS",
    "encode_rco_envelope",
    "decode_rco_envelope",
    "CausalOrderBroadcast",
]
